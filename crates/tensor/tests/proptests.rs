//! Property-based tests of the tensor engine: algebraic identities,
//! broadcasting laws, autograd vs finite differences, and the
//! traffic-compute kernels (blocked GEMM, CSR spmm) against the naive
//! reference on random shapes.

use proptest::prelude::*;
use traffic_tensor::gradcheck::grad_check;
use traffic_tensor::{gemm, shape, CsrMatrix, Tensor};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_for(shape_v: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = shape::numel(&shape_v);
    prop::collection::vec(-2.0f32..2.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, &shape_v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_associative((a, b, c) in small_shape().prop_flat_map(|s| {
        (tensor_for(s.clone()), tensor_for(s.clone()), tensor_for(s))
    })) {
        let lhs = a.add(&b).add(&c);
        let rhs = a.add(&b.add(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_distributes_over_add((a, b, c) in small_shape().prop_flat_map(|s| {
        (tensor_for(s.clone()), tensor_for(s.clone()), tensor_for(s))
    })) {
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_shape_law(s1 in small_shape(), s2 in small_shape()) {
        // broadcast is symmetric when defined
        let b12 = shape::broadcast_shapes(&s1, &s2);
        let b21 = shape::broadcast_shapes(&s2, &s1);
        prop_assert_eq!(b12, b21);
    }

    #[test]
    fn reshape_preserves_sum(t in small_shape().prop_flat_map(tensor_for)) {
        let n = t.len();
        let flat = t.reshape(&[n]);
        prop_assert!((flat.sum_all() - t.sum_all()).abs() < 1e-3);
    }

    #[test]
    fn sum_axes_total_matches(t in small_shape().prop_flat_map(tensor_for)) {
        let axes: Vec<usize> = (0..t.rank()).collect();
        let all = t.sum_axes(&axes, false);
        prop_assert!((all.item() - t.sum_all()).abs() < 1e-2);
    }

    #[test]
    fn matmul_associative_3(m in 1usize..4, k in 1usize..4, l in 1usize..4, n in 1usize..4) {
        // (A·B)·C == A·(B·C) within fp tolerance
        let a = Tensor::from_vec((0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * l).map(|i| (i as f32 * 0.21).cos()).collect(), &[k, l]);
        let c = Tensor::from_vec((0..l * n).map(|i| (i as f32 * 0.13).sin()).collect(), &[l, n]);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn autograd_matches_numeric_on_random_composite(
        t in small_shape().prop_flat_map(tensor_for)
    ) {
        // f(x) = sum(tanh(x) * x + 0.5 x²) — smooth everywhere.
        let report = grad_check(&[t], 1e-2, |_tape, v| {
            v[0].tanh().mul(&v[0]).add(&v[0].powf(2.0).mul_scalar(0.5)).sum_all()
        });
        prop_assert!(report.max_rel_err < 5e-2, "rel err {}", report.max_rel_err);
    }

    #[test]
    fn conv_linear_in_input(b in 1usize..3, c in 1usize..3, h in 1usize..3, w in 4usize..8) {
        // conv2d(x + y) == conv2d(x) + conv2d(y)
        let mk = |seed: f32| {
            Tensor::from_vec(
                (0..b * c * h * w).map(|i| ((i as f32 + seed) * 0.3).sin()).collect(),
                &[b, c, h, w],
            )
        };
        let x = mk(0.0);
        let y = mk(7.0);
        let kern = Tensor::from_vec(
            (0..(2 * c) * 2).map(|i| (i as f32 * 0.11).cos()).collect(),
            &[2, c, 1, 2],
        );
        let lhs = x.add(&y).conv2d(&kern, 1, 1);
        let rhs = x.conv2d(&kern, 1, 1).add(&y.conv2d(&kern, 1, 1));
        for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((p - q).abs() < 1e-3);
        }
    }

    #[test]
    fn narrow_concat_roundtrip(t in small_shape().prop_flat_map(tensor_for), axis_seed in 0usize..8) {
        let axis = axis_seed % t.rank();
        let d = t.shape()[axis];
        prop_assume!(d >= 2);
        let split = d / 2;
        let a = t.narrow(axis, 0, split);
        let b = t.narrow(axis, split, d - split);
        prop_assert_eq!(Tensor::concat(&[&a, &b], axis), t);
    }

    #[test]
    fn blocked_gemm_matches_naive(
        // Ranges cross the MR (6) and NR (16) tile boundaries and
        // include the degenerate k = 0 / n = 1 edges.
        m in 1usize..20,
        k in 0usize..24,
        n in 1usize..36,
        seed in 0u32..1000,
    ) {
        let a: Vec<f32> =
            (0..m * k).map(|i| (((i as u32 + seed) % 97) as f32 - 48.0) * 0.03).collect();
        let b: Vec<f32> =
            (0..k * n).map(|i| (((i as u32 * 7 + seed) % 89) as f32 - 44.0) * 0.025).collect();
        let mut want = vec![0.0f32; m * n];
        gemm::matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm(&a, &b, &mut got, m, k, n);
        let mut par = vec![0.0f32; m * n];
        gemm::gemm_parallel(&a, &b, &mut par, m, k, n);
        // Overwrite mode must ignore garbage in `out` and still match
        // the zeroed accumulate kernel bit for bit.
        let mut over = vec![f32::NAN; m * n];
        gemm::gemm_overwrite(&a, &b, &mut over, m, k, n);
        for (((g, p), o), w) in got.iter().zip(&par).zip(&over).zip(&want) {
            prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "blocked {g} vs naive {w}");
            // parallel vs serial blocked is bit-exact at any thread count
            prop_assert!(p == g, "parallel {p} vs serial {g}");
            prop_assert!(o.to_bits() == g.to_bits(), "overwrite {o} vs accumulate {g}");
        }
    }

    #[test]
    fn csr_spmm_matches_naive(
        rows in 1usize..16,
        cols in 1usize..16,
        f in 1usize..8,
        density_pct in 0usize..100,
        seed in 0u32..1000,
    ) {
        // Pseudo-random sparsity pattern covering empty, banded-ish,
        // and fully dense matrices.
        let dense_data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 100;
                if (h as usize) < density_pct { (h as f32 - 50.0) * 0.04 } else { 0.0 }
            })
            .collect();
        let dense = Tensor::from_vec(dense_data.clone(), &[rows, cols]);
        let csr = CsrMatrix::from_dense(&dense);
        let x: Vec<f32> =
            (0..cols * f).map(|i| (((i as u32 * 13 + seed) % 71) as f32 - 35.0) * 0.05).collect();
        let mut want = vec![0.0f32; rows * f];
        gemm::matmul_naive(&dense_data, &x, &mut want, rows, cols, f);
        let got = csr.matmul(&Tensor::from_vec(x, &[cols, f]));
        for (g, w) in got.as_slice().iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "csr {g} vs naive {w}");
        }
        // transpose round-trips through the counting sort
        prop_assert_eq!(csr.transpose().transpose().to_dense(), dense);
    }

    #[test]
    fn permute_fast_paths_match_reference(
        // Ranks 1–4 with axis sizes crossing the 32-wide transpose
        // tile, and a pseudo-random permutation — exercises both the
        // contiguous-run path and the tiled-transpose path against a
        // naive per-element reference.
        dims in prop::collection::vec(1usize..40, 1..5),
        perm_seed in 0usize..24,
    ) {
        prop_assume!(shape::numel(&dims) <= 20_000);
        let r = dims.len();
        let mut perm: Vec<usize> = (0..r).collect();
        // Lehmer-style shuffle from the seed so all permutations occur.
        let mut s = perm_seed;
        for i in (1..r).rev() {
            perm.swap(i, s % (i + 1));
            s /= i + 1;
        }
        let t = Tensor::from_vec(
            (0..shape::numel(&dims)).map(|i| (i as f32 * 0.37).sin()).collect(),
            &dims,
        );
        let got = t.permute(&perm);
        // Naive reference: out[coords] = in[coords mapped through perm].
        let out_shape: Vec<usize> = perm.iter().map(|&p| dims[p]).collect();
        prop_assert_eq!(got.shape(), &out_shape[..]);
        let mut coords = vec![0usize; r];
        for _ in 0..t.len() {
            let mut in_coords = vec![0usize; r];
            for (o, &p) in perm.iter().enumerate() {
                in_coords[p] = coords[o];
            }
            prop_assert_eq!(got.at(&coords).to_bits(), t.at(&in_coords).to_bits());
            for ax in (0..r).rev() {
                coords[ax] += 1;
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
    }

    #[test]
    fn fused_gated_activation_matches_composition(
        t in small_shape().prop_flat_map(tensor_for),
        seed in 0u32..100,
    ) {
        // Tensor-level fused kernel vs the three-op composition, bitwise
        // (forward and both gradients).
        let g = Tensor::from_vec(
            t.as_slice().iter().enumerate()
                .map(|(i, &v)| (v * 1.7 + (i as f32 + seed as f32) * 0.01).cos() * 3.0)
                .collect(),
            t.shape(),
        );
        let (out, tt, ss) = Tensor::gated_tanh_sigmoid(&t, &g);
        let want_t = t.map(traffic_tensor::fastmath::tanh);
        let want_s = g.map(traffic_tensor::fastmath::sigmoid);
        let want_out = want_t.mul(&want_s);
        for (a, b) in [(&out, &want_out), (&tt, &want_t), (&ss, &want_s)] {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let upstream = Tensor::ones(t.shape());
        let (gf, gg) = Tensor::gated_tanh_sigmoid_backward(&upstream, &tt, &ss);
        let want_gf = upstream.mul(&want_s).zip_map(&want_t, |gs, y| gs * (1.0 - y * y));
        let want_gg = upstream.mul(&want_t).zip_map(&want_s, |gt, y| (gt * y) * (1.0 - y));
        for (a, b) in [(&gf, &want_gf), (&gg, &want_gg)] {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn fast_tanh_tracks_libm(x in -20.0f32..20.0) {
        let got = traffic_tensor::fastmath::tanh(x) as f64;
        let want = (x as f64).tanh();
        prop_assert!(
            (got - want).abs() <= 6e-7 * want.abs().max(1e-10),
            "tanh({x}) = {got} vs libm {want}"
        );
    }

    #[test]
    fn softmax_is_distribution(rows in 1usize..5, cols in 2usize..6) {
        let t = Tensor::from_vec(
            (0..rows * cols).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.7).collect(),
            &[rows, cols],
        );
        let tape = traffic_tensor::Tape::new();
        let y = tape.constant(t).softmax(1).value();
        for r in 0..rows {
            let mut sum = 0.0f32;
            for c in 0..cols {
                let v = y.at(&[r, c]);
                prop_assert!((0.0..=1.0).contains(&v));
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }
}
