//! Kill-and-resume demo: a deterministic STGCN run that checkpoints a
//! full [`TrainState`] after every epoch and resumes from the checkpoint
//! if one exists. Used by `scripts/resume_smoke.sh`, which SIGKILLs the
//! first run mid-epoch via the `abort` fault site and asserts that the
//! resumed run's per-epoch losses are **bit-identical** to an
//! uninterrupted reference run.
//!
//! ```text
//! cargo run --release --example resume_train -- --checkpoint reports/resume/stgcn.tnn2
//! TRAFFIC_FAULTS="abort@20:hard" cargo run --release --example resume_train -- …
//! ```
//!
//! The final `LOSSES <hex>` line prints each epoch loss as its f32 bit
//! pattern, so continuity can be checked exactly, not approximately.

use std::path::PathBuf;

use traffic_suite::core::{train, TrainConfig};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};

fn main() {
    let checkpoint: PathBuf = std::env::args()
        .skip_while(|a| a != "--checkpoint")
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| "reports/resume/stgcn.tnn2".into());

    // Small fixed-seed dataset: every run sees identical data.
    let ds = simulate(&SimConfig::new("resume-demo", Task::Speed, 6, 4));
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let model = build_model("STGCN", &ctx, &mut rng);

    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 8,
        max_batches_per_epoch: Some(8),
        seed: 7,
        checkpoint_every: Some(1),
        checkpoint_path: Some(checkpoint.clone()),
        resume_from: Some(checkpoint.clone()),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);

    match report.resumed_at {
        Some(e) => println!("resumed from {} at epoch {e}", checkpoint.display()),
        None => println!("fresh run (no usable checkpoint at {})", checkpoint.display()),
    }
    println!(
        "epoch losses: {:?}",
        report.epoch_losses.iter().map(|l| format!("{l:.4}")).collect::<Vec<_>>()
    );
    // Bit patterns: the resume contract is exact, so the smoke test
    // compares these, not rounded decimals.
    let bits: Vec<String> =
        report.epoch_losses.iter().map(|l| format!("{:08x}", l.to_bits())).collect();
    println!("LOSSES {}", bits.join(","));
}
