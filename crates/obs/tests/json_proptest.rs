//! Property test: `parse(pretty(v)) == v` for arbitrary JSON trees.
//!
//! The vendored proptest has no recursive combinators, so trees are
//! grown by a hand-rolled SplitMix64 generator driven from a single
//! `u64` seed strategy — every case is still deterministic per seed and
//! the generator bounds depth and width so cases stay small.

use proptest::prelude::*;
use std::collections::BTreeMap;
use traffic_obs::json::{parse, pretty, Json};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Strings biased toward the characters the escaper must handle:
/// quotes, backslashes, control chars, and some multi-byte UTF-8.
fn gen_string(state: &mut u64) -> String {
    const POOL: &[&str] =
        &["a", "Z", "\"", "\\", "\n", "\t", "\r", "\u{1}", "/", " ", "é", "λ", "🚦", "{", "}"];
    let len = (splitmix(state) % 8) as usize;
    (0..len).map(|_| POOL[splitmix(state) as usize % POOL.len()]).collect()
}

/// Finite doubles spanning magnitudes, including negatives and zero.
fn gen_num(state: &mut u64) -> f64 {
    let mantissa = (splitmix(state) % 2_000_001) as f64 - 1_000_000.0;
    let scale = match splitmix(state) % 5 {
        0 => 1e-6,
        1 => 1e-3,
        2 => 1.0,
        3 => 1e3,
        _ => 1e9,
    };
    mantissa * scale
}

fn gen_json(state: &mut u64, depth: u32) -> Json {
    // Leaves only at the depth limit; otherwise a mix weighted toward
    // branching so most trees actually nest.
    let pick = splitmix(state) % if depth == 0 { 4 } else { 6 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(splitmix(state).is_multiple_of(2)),
        2 => Json::Num(gen_num(state)),
        3 => Json::Str(gen_string(state)),
        4 => {
            let n = (splitmix(state) % 4) as usize;
            Json::Arr((0..n).map(|_| gen_json(state, depth - 1)).collect())
        }
        _ => {
            let n = (splitmix(state) % 4) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(gen_string(state), gen_json(state, depth - 1));
            }
            Json::Obj(map)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_parse_round_trip(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let v = gen_json(&mut state, 3);
        let text = pretty(&v);
        let back = parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&v), "failed to round-trip: {}", text);
    }

    #[test]
    fn compact_event_lines_round_trip(seed in 0u64..u64::MAX) {
        // Same property through the compact (single-line) printer used
        // for manifests: pretty() is not the only serializer in play.
        let mut state = seed.rotate_left(17);
        let v = gen_json(&mut state, 2);
        let text = pretty(&v);
        // A pretty document re-parsed and re-printed must be stable.
        let reparsed = parse(&text).expect("first parse");
        prop_assert_eq!(pretty(&reparsed), text);
    }
}
