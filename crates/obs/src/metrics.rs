//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! log-scale histograms with quantile readout.
//!
//! Metrics are interned in a global registry by name; [`counter`],
//! [`gauge`], and [`histogram`] hand back `&'static` references, so hot
//! loops look a name up once and then update via bare atomics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// Monotone event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins scalar.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Stores a value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Loads the last stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Log-scale bucket layout: `BUCKETS_PER_DECADE` buckets per decade
/// over `[10^MIN_EXP, 10^MAX_EXP)`, so neighbouring bucket edges differ
/// by a factor of `10^(1/40) ≈ 1.059` — quantiles read back within
/// ~6% relative error anywhere in the covered 18 decades.
const BUCKETS_PER_DECADE: usize = 40;
const MIN_EXP: i32 = -9;
const MAX_EXP: i32 = 9;
const N_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * BUCKETS_PER_DECADE;

/// Fixed-bucket histogram of positive samples (counts, latencies,
/// losses, throughput). Zero/negative samples land in an underflow
/// bucket; samples past `10^9` in an overflow bucket.
pub struct Histogram {
    buckets: Box<[AtomicU64]>, // [underflow, N_BUCKETS.., overflow]
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 accumulated via CAS
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS + 2).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() || !v.is_finite() {
        return 0; // underflow (also NaN / non-positive)
    }
    let pos = (v.log10() - MIN_EXP as f64) * BUCKETS_PER_DECADE as f64;
    if pos < 0.0 {
        0
    } else if pos >= N_BUCKETS as f64 {
        N_BUCKETS + 1
    } else {
        pos as usize + 1
    }
}

fn bucket_bounds(idx: usize) -> (f64, f64) {
    // idx is 1-based within the log range
    let exp_lo = MIN_EXP as f64 + (idx - 1) as f64 / BUCKETS_PER_DECADE as f64;
    let exp_hi = MIN_EXP as f64 + idx as f64 / BUCKETS_PER_DECADE as f64;
    (10f64.powf(exp_lo), 10f64.powf(exp_hi))
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
            update_extreme(&self.min_bits, v, |new, old| new < old);
            update_extreme(&self.max_bits, v, |new, old| new > old);
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of finite samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) / n as f64
        }
    }

    /// Smallest finite sample (NaN when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Largest finite sample (NaN when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` (NaN when empty). Bucketed
    /// estimate: the geometric midpoint of the bucket containing the
    /// rank, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let est = if idx == 0 {
                    self.min()
                } else if idx == N_BUCKETS + 1 {
                    self.max()
                } else {
                    let (lo, hi) = bucket_bounds(idx);
                    (lo * hi).sqrt()
                };
                let (lo, hi) = (self.min(), self.max());
                return if lo.is_finite() { est.clamp(lo, hi) } else { est };
            }
        }
        self.max()
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative bucket readout for exposition-format exports:
    /// `(upper_bound, samples ≤ upper_bound)` for every **non-empty**
    /// bucket in ascending order, plus the grand total (which includes
    /// the overflow bucket, i.e. the `+Inf` count). The underflow
    /// bucket (zero/negative/non-finite samples) reports under the
    /// smallest covered edge, `10^MIN_EXP`.
    pub fn cumulative_buckets(&self) -> (Vec<(f64, u64)>, u64) {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate().take(N_BUCKETS + 1) {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cum += n;
            let upper = if idx == 0 { bucket_bounds(1).0 } else { bucket_bounds(idx).1 };
            out.push((upper, cum));
        }
        let total = cum + self.buckets[N_BUCKETS + 1].load(Ordering::Relaxed);
        (out, total)
    }

    /// Resets all state.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn update_extreme(bits: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = bits.load(Ordering::Relaxed);
    while better(v, f64::from_bits(cur)) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: HashMap<String, &'static Counter>,
    gauges: HashMap<String, &'static Gauge>,
    histograms: HashMap<String, &'static Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().expect("metrics registry poisoned");
    f(guard.get_or_insert_with(Registry::default))
}

/// Interns (or fetches) the counter of this name.
pub fn counter(name: &str) -> &'static Counter {
    with_registry(|r| {
        *r.counters
            .entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    })
}

/// Interns (or fetches) the gauge of this name.
pub fn gauge(name: &str) -> &'static Gauge {
    with_registry(|r| {
        *r.gauges.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    })
}

/// Interns (or fetches) the histogram of this name.
pub fn histogram(name: &str) -> &'static Histogram {
    with_registry(|r| {
        *r.histograms
            .entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
    })
}

/// Resets every registered metric to its empty state (run isolation;
/// tests). Handles stay valid — they point at the same interned slots.
pub fn reset_metrics() {
    with_registry(|r| {
        for c in r.counters.values() {
            c.reset();
        }
        for g in r.gauges.values() {
            g.reset();
        }
        for h in r.histograms.values() {
            h.reset();
        }
    })
}

/// Every registered metric as `(name, handle)` lists sorted by name —
/// the raw-handle sibling of [`metrics_snapshot`], used by the live
/// `/metrics` exporter, which needs bucket-level histogram access.
#[allow(clippy::type_complexity)]
pub(crate) fn export_lists() -> (
    Vec<(String, &'static Counter)>,
    Vec<(String, &'static Gauge)>,
    Vec<(String, &'static Histogram)>,
) {
    with_registry(|r| {
        let mut counters: Vec<_> = r.counters.iter().map(|(n, c)| (n.clone(), *c)).collect();
        let mut gauges: Vec<_> = r.gauges.iter().map(|(n, g)| (n.clone(), *g)).collect();
        let mut histograms: Vec<_> = r.histograms.iter().map(|(n, h)| (n.clone(), *h)).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        (counters, gauges, histograms)
    })
}

/// Snapshot of every registered metric as `metric` events, sorted by
/// name (what the run manifest's summary section is built from).
pub fn metrics_snapshot() -> Vec<Event> {
    with_registry(|r| {
        let mut out = Vec::new();
        let mut counters: Vec<_> = r.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(b.0));
        for (name, c) in counters {
            out.push(
                Event::new("metric")
                    .with("metric", name.as_str())
                    .with("kind", "counter")
                    .with("value", c.get()),
            );
        }
        let mut gauges: Vec<_> = r.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(b.0));
        for (name, g) in gauges {
            out.push(
                Event::new("metric")
                    .with("metric", name.as_str())
                    .with("kind", "gauge")
                    .with("value", g.get()),
            );
        }
        let mut histograms: Vec<_> = r.histograms.iter().collect();
        histograms.sort_by(|a, b| a.0.cmp(b.0));
        for (name, h) in histograms {
            out.push(
                Event::new("metric")
                    .with("metric", name.as_str())
                    .with("kind", "histogram")
                    .with("count", h.count())
                    .with("mean", h.mean())
                    .with("min", h.min())
                    .with("max", h.max())
                    .with("p50", h.quantile(0.50))
                    .with("p90", h.quantile(0.90))
                    .with("p99", h.quantile(0.99)),
            );
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_basics() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_uniform_quantiles() {
        let h = Histogram::default();
        for i in 1..=10_000u32 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10_000.0);
        for (q, expect) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.10, "p{q}: got {got}, want ~{expect} (rel {rel:.3})");
        }
    }

    #[test]
    fn histogram_small_values() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1e-3);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 1e-3).abs() / 1e-3 < 0.10, "p50 {p50}");
    }

    #[test]
    fn histogram_handles_edge_samples() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.count(), 4);
        // min/max only track finite samples
        assert_eq!(h.max(), 2.0);
        assert_eq!(h.min(), -5.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_complete() {
        let h = Histogram::default();
        for v in [1e-3, 1e-3, 0.5, 2.0, 1e12, -1.0] {
            h.record(v);
        }
        let (buckets, total) = h.cumulative_buckets();
        assert_eq!(total, 6, "total includes under- and overflow");
        // ascending bounds, non-decreasing cumulative counts
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // the underflow sample (-1.0) counts under the smallest edge
        assert_eq!(buckets.first().unwrap().1, 1);
        // everything but the 1e12 overflow sample is ≤ the last bound
        assert_eq!(buckets.last().unwrap().1, 5);
        assert!((h.sum() - (1e-3 + 1e-3 + 0.5 + 2.0 + 1e12 - 1.0)).abs() < 1.0);
    }

    #[test]
    fn registry_interns() {
        let a = counter("test/interned");
        let b = counter("test/interned");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), 1);
    }
}
