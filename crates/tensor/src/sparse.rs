//! CSR sparse matrices for graph propagation.
//!
//! Road-network adjacencies, Laplacians, and random-walk transition
//! matrices are >95% zeros at METR-LA scale, yet the seed engine
//! multiplied them as dense `[N, N]` operands (with a per-element
//! zero-skip branch inside the innermost loop). [`CsrMatrix`] stores
//! only the non-zeros and multiplies dense node-feature tensors in
//! `O(nnz · F)`; [`Propagator`] wraps the dense-vs-sparse decision and
//! records the matching autograd node, so graph-conv layers pick the
//! faster representation per matrix without changing their API.
//!
//! Determinism: `csr · dense` parallelises over disjoint output rows
//! and accumulates each row's non-zeros in column order, so results are
//! independent of thread count.

use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Instant;

use crate::gemm;
use crate::pool;
use crate::tensor::Tensor;
use crate::{Tape, Var};

/// Matrices at or below this density default to the CSR path. Above
/// it, the dense blocked GEMM's contiguity wins.
pub const SPARSE_MAX_DENSITY: f32 = 0.25;

/// Dispatch threshold: spmm work (2 · nnz · F flops) below this runs
/// inline rather than through the pool.
const PAR_FLOPS: usize = 1 << 16;

/// Compressed sparse row `[rows, cols]` matrix of `f32` non-zeros.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i`'s entries.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense `[R, C]` tensor, dropping exact
    /// zeros.
    pub fn from_dense(dense: &Tensor) -> CsrMatrix {
        assert_eq!(
            dense.rank(),
            2,
            "CsrMatrix::from_dense expects [R, C], got {:?}",
            dense.shape()
        );
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        assert!(cols as u64 <= u32::MAX as u64, "column count exceeds u32 index space");
        let data = dense.as_slice();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for i in 0..rows {
            for j in 0..cols {
                let v = data[i * cols + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, vals }
    }

    /// Materialises back to a dense tensor (tests, fallbacks).
    pub fn to_dense(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            for e in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                out[i * self.cols + self.col_idx[e] as usize] = self.vals[e];
            }
        }
        Tensor::from_vec(out, &[self.rows, self.cols])
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fraction of entries stored (`nnz / (rows · cols)`).
    pub fn density(&self) -> f32 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f32 / (self.rows * self.cols) as f32
        }
    }

    /// The transposed matrix in CSR form (counting sort by column;
    /// entries within each transposed row stay in ascending column
    /// order). Layers cache this for the backward pass.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u32; self.cols + 1];
        for &j in &self.col_idx {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for e in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                let j = self.col_idx[e] as usize;
                let slot = next[j] as usize;
                col_idx[slot] = i as u32;
                vals[slot] = self.vals[e];
                next[j] += 1;
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// `self · x` for `x: [N, F]` or `[B, N, F]` with `N == cols`;
    /// output replaces the node axis with `rows`. Row-parallel and
    /// deterministic.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        let (nbatch, n, f, mut out_shape) = match x.rank() {
            2 => (1usize, x.shape()[0], x.shape()[1], vec![self.rows, x.shape()[1]]),
            3 => (
                x.shape()[0],
                x.shape()[1],
                x.shape()[2],
                vec![x.shape()[0], self.rows, x.shape()[2]],
            ),
            r => panic!("CsrMatrix::matmul expects rank 2 or 3 input, got rank {r}"),
        };
        assert_eq!(
            n,
            self.cols,
            "spmm dimension mismatch: [{}, {}] · {:?}",
            self.rows,
            self.cols,
            x.shape()
        );
        out_shape[x.rank() - 2] = self.rows;
        let start = Instant::now();
        let mut out = vec![0.0f32; nbatch * self.rows * f];
        let xd = x.as_slice();
        let flops_per_batch = 2 * self.nnz() * f;
        let mut prof = traffic_obs::profile::op("spmm", "csr");
        prof.set_flops(flops_per_batch * nbatch);
        prof.set_bytes((2 * self.nnz() + xd.len() + out.len()) * 4);
        let rows_per_task = if flops_per_batch < PAR_FLOPS {
            self.rows // single chunk → inline
        } else {
            self.rows.div_ceil(pool::effective_threads() * 2).max(1)
        };
        for (bi, out_b) in out.chunks_mut(self.rows * f).enumerate() {
            let xb = &xd[bi * n * f..(bi + 1) * n * f];
            pool::parallel_chunks_mut(out_b, rows_per_task * f, |ci, chunk| {
                let r0 = ci * rows_per_task;
                for (local, row_out) in chunk.chunks_mut(f).enumerate() {
                    let r = r0 + local;
                    for e in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                        let j = self.col_idx[e] as usize;
                        let v = self.vals[e];
                        let x_row = &xb[j * f..j * f + f];
                        for (o, &xv) in row_out.iter_mut().zip(x_row) {
                            *o += v * xv;
                        }
                    }
                }
            });
        }
        record_spmm(flops_per_batch * nbatch, start.elapsed().as_secs_f64());
        Tensor::from_vec(out, &out_shape)
    }
}

fn record_spmm(flops: usize, secs: f64) {
    static HIST: OnceLock<&'static traffic_obs::Histogram> = OnceLock::new();
    gemm::record_flops(flops, 0.0); // cumulative counter only
    if secs > 0.0 && flops > 0 {
        HIST.get_or_init(|| traffic_obs::histogram("compute/spmm_gflops"))
            .record(flops as f64 / secs / 1e9);
    }
}

/// A fixed graph-propagation operator `x ↦ A · x`, stored sparse (CSR,
/// with its cached transpose for the backward pass) when `A` is sparse
/// enough and dense otherwise. Built once per layer from the dense
/// adjacency/Laplacian/transition matrix the graph crate produces.
#[derive(Debug, Clone)]
pub enum Propagator {
    /// Dense operator with its cached transpose.
    Dense { a: Tensor, at: Tensor },
    /// CSR operator with its cached transpose.
    Sparse { a: Arc<CsrMatrix>, at: Arc<CsrMatrix> },
}

impl Propagator {
    /// Chooses CSR when density ≤ [`SPARSE_MAX_DENSITY`], dense
    /// otherwise.
    pub fn from_matrix(a: Tensor) -> Propagator {
        Propagator::with_max_density(a, SPARSE_MAX_DENSITY)
    }

    /// Like [`Propagator::from_matrix`] with an explicit density cutoff
    /// (`0.0` forces dense, `1.0` forces sparse).
    pub fn with_max_density(a: Tensor, max_density: f32) -> Propagator {
        assert_eq!(a.rank(), 2, "propagator matrix must be [N, N], got {:?}", a.shape());
        let csr = CsrMatrix::from_dense(&a);
        if csr.density() <= max_density {
            let at = Arc::new(csr.transpose());
            Propagator::Sparse { a: Arc::new(csr), at }
        } else {
            let at = a.t();
            Propagator::Dense { a, at }
        }
    }

    /// True when the CSR path is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Propagator::Sparse { .. })
    }

    /// Node count `N` (the operator is square).
    pub fn n(&self) -> usize {
        match self {
            Propagator::Dense { a, .. } => a.shape()[0],
            Propagator::Sparse { a, .. } => a.rows(),
        }
    }

    /// Applies `A ·` to a plain tensor (`[N, F]` or `[B, N, F]`).
    pub fn apply_tensor(&self, x: &Tensor) -> Tensor {
        match self {
            Propagator::Dense { a, .. } => a.matmul(x),
            Propagator::Sparse { a, .. } => a.matmul(x),
        }
    }

    /// Applies `A ·` on the tape: forward `A · x`, backward `g ↦ Aᵀ · g`.
    /// The operator itself is constant (no gradient into `A`), which
    /// also skips the wasted adjacency-gradient GEMM the seed paid when
    /// multiplying by a dense constant.
    pub fn apply<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        assert_eq!(tape.id(), x.tape().id(), "propagator applied to a Var from a different tape");
        let y = self.apply_tensor(&x.value());
        match self {
            Propagator::Dense { at, .. } => {
                let at = at.clone();
                tape.unary("prop_apply", &x, y, move |g| at.matmul(g))
            }
            Propagator::Sparse { at, .. } => {
                let at = Arc::clone(at);
                tape.unary("prop_apply", &x, y, move |g| at.matmul(g))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded(n: usize, band: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, n]);
        {
            let buf = t.make_mut();
            for i in 0..n {
                for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                    buf[i * n + j] = (i * n + j) as f32 * 0.01 + 0.1;
                }
            }
        }
        t
    }

    #[test]
    fn roundtrip_dense() {
        let d = banded(9, 2);
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.to_dense(), d);
        assert!(csr.density() < 0.6);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = banded(7, 1);
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.transpose().to_dense(), d.t());
        // involution
        assert_eq!(csr.transpose().transpose().to_dense(), d);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = banded(13, 2);
        let csr = CsrMatrix::from_dense(&a);
        for x in [
            Tensor::arange(13 * 5).reshape(&[13, 5]).mul_scalar(0.01),
            Tensor::arange(3 * 13 * 4).reshape(&[3, 13, 4]).mul_scalar(0.01),
        ] {
            let want = a.matmul(&x);
            let got = csr.matmul(&x);
            assert_eq!(got.shape(), want.shape());
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn empty_rows_produce_zeros() {
        let mut d = Tensor::zeros(&[4, 4]);
        d.make_mut()[4 + 2] = 3.0; // only row 1 has an entry
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 1);
        let x = Tensor::ones(&[4, 2]);
        let y = csr.matmul(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn propagator_picks_representation() {
        let sparse = Propagator::from_matrix(banded(32, 1));
        assert!(sparse.is_sparse());
        let dense = Propagator::from_matrix(Tensor::ones(&[8, 8]));
        assert!(!dense.is_sparse());
        assert_eq!(sparse.n(), 32);
    }

    #[test]
    fn propagator_backward_is_transpose() {
        // loss = sum(A · x) ⇒ dx = Aᵀ · 1
        let a = banded(6, 1);
        for prop in [
            Propagator::with_max_density(a.clone(), 1.0),
            Propagator::with_max_density(a.clone(), 0.0),
        ] {
            let tape = Tape::new();
            let x = tape.leaf(Tensor::ones(&[2, 6, 3]), true);
            let loss = prop.apply(&tape, x).sum_all();
            let g = tape.backward(loss);
            let gx = g.get(x).unwrap();
            let want = a.t().matmul(&Tensor::ones(&[2, 6, 3]));
            for (got, w) in gx.as_slice().iter().zip(want.as_slice()) {
                assert!((got - w).abs() < 1e-4);
            }
        }
    }
}
