//! Run lifecycle: installs sinks, brackets the run with
//! `run_start`/`run_end` events, and appends a metrics summary to the
//! manifest when the run ends.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::event::Event;
use crate::sink::{add_sink, remove_sink, ConsoleSink, JsonlSink, Sink};

/// Builder for [`Run`].
pub struct RunBuilder {
    name: String,
    console: bool,
    jsonl_dir: Option<PathBuf>,
    reset_metrics: bool,
}

impl RunBuilder {
    /// Attaches a [`ConsoleSink`] (live epoch lines + sparkline).
    pub fn console(mut self, on: bool) -> Self {
        self.console = on;
        self
    }

    /// Attaches a [`JsonlSink`] writing `<dir>/<name>.jsonl`.
    pub fn jsonl(mut self, dir: impl Into<PathBuf>) -> Self {
        self.jsonl_dir = Some(dir.into());
        self
    }

    /// Whether global metrics reset when the run starts (default true,
    /// so each manifest's summary covers only its own run).
    pub fn reset_metrics(mut self, on: bool) -> Self {
        self.reset_metrics = on;
        self
    }

    /// Installs the sinks and starts the run.
    pub fn start(self) -> std::io::Result<Run> {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        let mut manifest_path = None;
        if self.console {
            sinks.push(Arc::new(ConsoleSink::new()));
        }
        if let Some(dir) = &self.jsonl_dir {
            let jsonl = JsonlSink::create(dir, &self.name)?;
            manifest_path = Some(jsonl.path().to_path_buf());
            sinks.push(Arc::new(jsonl));
        }
        if self.reset_metrics {
            crate::metrics::reset_metrics();
        }
        for s in &sinks {
            add_sink(Arc::clone(s));
        }
        let run =
            Run { name: self.name, sinks, manifest_path, started: Instant::now(), ended: false };
        crate::emit(&Event::new("run_start").with("run", run.name.as_str()));
        Ok(run)
    }
}

/// An active telemetry run (RAII: ending/shutdown happens on drop).
///
/// ```no_run
/// let run = traffic_obs::Run::named("demo")
///     .console(true)
///     .jsonl("reports/runs")
///     .start()?;
/// // ... train, emit events ...
/// drop(run); // writes summary + run_end, detaches sinks
/// # std::io::Result::Ok(())
/// ```
pub struct Run {
    name: String,
    sinks: Vec<Arc<dyn Sink>>,
    manifest_path: Option<PathBuf>,
    started: Instant,
    ended: bool,
}

impl Run {
    /// Starts building a run with the given manifest name.
    pub fn named(name: &str) -> RunBuilder {
        RunBuilder { name: name.to_string(), console: false, jsonl_dir: None, reset_metrics: true }
    }

    /// Run name (manifest file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Path of the JSONL manifest, when one was requested.
    pub fn manifest_path(&self) -> Option<&std::path::Path> {
        self.manifest_path.as_deref()
    }

    /// Ends the run explicitly (otherwise happens on drop).
    pub fn finish(mut self) {
        self.end();
    }

    fn end(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        // summary: every registered metric, then the run_end banner
        for ev in crate::metrics::metrics_snapshot() {
            crate::emit(&ev.with("run", self.name.as_str()));
        }
        crate::emit(
            &Event::new("run_end")
                .with("run", self.name.as_str())
                .with("wall_s", self.started.elapsed().as_secs_f64()),
        );
        crate::sink::flush_all();
        for s in &self.sinks {
            remove_sink(s);
        }
        self.sinks.clear();
    }
}

impl Drop for Run {
    fn drop(&mut self) {
        self.end();
    }
}
