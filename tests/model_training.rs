//! Per-model training contracts: every architecture must be able to reduce
//! its training loss on a small dataset, stay numerically stable, and
//! respect its output-style semantics.

use traffic_suite::core::{train, TrainConfig};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext, OutputStyle, ALL_MODELS};

fn setup() -> (traffic_suite::data::PreparedData, GraphContext) {
    let mut cfg = SimConfig::new("train-contract", Task::Speed, 8, 5);
    cfg.missing_rate = 0.0;
    let ds = simulate(&cfg);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    (data, ctx)
}

/// Loss after a few epochs must drop meaningfully below the first epoch.
fn assert_learns(name: &str) {
    let (data, ctx) = setup();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let model = build_model(name, &ctx, &mut rng);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        max_batches_per_epoch: Some(12),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    let first = report.epoch_losses[0];
    let last = *report.epoch_losses.last().unwrap();
    assert!(last < first * 0.9, "{name} failed to learn: losses {:?}", report.epoch_losses);
    assert!(!model.store().has_non_finite(), "{name}: non-finite weights after training");
}

#[test]
fn stgcn_learns() {
    assert_learns("STGCN");
}

#[test]
fn dcrnn_learns() {
    assert_learns("DCRNN");
}

#[test]
fn astgcn_learns() {
    assert_learns("ASTGCN");
}

#[test]
fn stmetanet_learns() {
    assert_learns("ST-MetaNet");
}

#[test]
fn graph_wavenet_learns() {
    assert_learns("Graph-WaveNet");
}

#[test]
fn stg2seq_learns() {
    assert_learns("STG2Seq");
}

#[test]
fn stsgcn_learns() {
    assert_learns("STSGCN");
}

#[test]
fn gman_learns() {
    assert_learns("GMAN");
}

#[test]
fn output_styles_match_taxonomy() {
    let (_, ctx) = setup();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    for name in ALL_MODELS {
        let model = build_model(name, &ctx, &mut rng);
        let meta = model.meta();
        let horizon = traffic_suite::models::train_horizon(name, 12);
        match meta.output {
            OutputStyle::ManyToOne => assert_eq!(horizon, 1, "{name}"),
            _ => assert_eq!(horizon, 12, "{name}"),
        }
    }
}

#[test]
fn deep_model_beats_persistence_when_trained() {
    use traffic_suite::core::predict;
    use traffic_suite::metrics::evaluate;
    use traffic_suite::models::LastValue;

    let (data, ctx) = setup();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let model = build_model("Graph-WaveNet", &ctx, &mut rng);
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 16,
        max_batches_per_epoch: Some(40),
        ..Default::default()
    };
    train(model.as_ref(), &data, &cfg);

    let test = data.test.truncate(80);
    let deep = evaluate(&predict(model.as_ref(), &test, &data.scaler, 16), &test.y_raw, None);
    let persistence = LastValue::new(12);
    let base = evaluate(&predict(&persistence, &test, &data.scaler, 16), &test.y_raw, None);
    assert!(
        deep.mae < base.mae,
        "trained Graph-WaveNet (MAE {}) should beat persistence (MAE {})",
        deep.mae,
        base.mae
    );
}
