//! Weight checkpointing: save/load a [`ParamStore`] to a simple
//! self-describing binary format (no external serialization crates).
//!
//! Layout: magic `TNN1`, u32 param count, then per parameter:
//! u32 name length, name bytes (UTF-8), u32 rank, u64 dims…, f32 data…
//! All integers little-endian.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use traffic_tensor::Tensor;

use crate::param::ParamStore;

const MAGIC: &[u8; 4] = b"TNN1";

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structure mismatch between file and store.
    Mismatch(String),
    /// The file failed structural validation (bad magic/version, CRC
    /// mismatch, truncation) — it is not a usable checkpoint.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter of `store` to `path`.
///
/// The write is atomic (staged in a temp sibling, fsynced, renamed —
/// the `TNN2` write path from [`crate::tnn2::atomic_write`]): a crash
/// mid-save leaves the previous file intact instead of a torn `TNN1`.
/// The bytes on disk are exactly the legacy `TNN1` layout, readable by
/// older code.
pub fn save_weights(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let mut w = Vec::new();
    w.extend_from_slice(MAGIC);
    w.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for p in store.params() {
        let name = p.name().as_bytes();
        w.extend_from_slice(&(name.len() as u32).to_le_bytes());
        w.extend_from_slice(name);
        let value = p.value();
        let shape = value.shape();
        w.extend_from_slice(&(shape.len() as u32).to_le_bytes());
        for &d in shape {
            w.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in value.as_slice() {
            w.extend_from_slice(&v.to_le_bytes());
        }
    }
    crate::tnn2::atomic_write(path, &w)?;
    Ok(())
}

/// Loads weights from `path` into `store`. Every parameter in the store
/// must appear in the file with an identical shape (extra file entries are
/// an error too — checkpoints are exact).
pub fn load_weights(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Mismatch("bad magic (not a TNN1 checkpoint)".into()));
    }
    let count = read_u32(&mut r)? as usize;
    if count != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {count} params, store has {}",
            store.len()
        )));
    }
    for p in store.params() {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Mismatch("non-UTF8 parameter name".into()))?;
        if name != p.name() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter order mismatch: file {name} vs store {}",
                p.name()
            )));
        }
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        if shape != p.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "{name}: file shape {shape:?} vs store {:?}",
                p.shape()
            )));
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0.0f32; numel];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        p.set_value(Tensor::from_vec(data, &shape));
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::init;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("traffic_ckpt_{name}_{}", std::process::id()))
    }

    fn make_store(seed: u64) -> ParamStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.add("layer.weight", init::xavier_uniform(&[4, 3], &mut rng));
        store.add("layer.bias", init::uniform(&[4], -1.0, 1.0, &mut rng));
        store.add("emb", init::normal(&[5, 2], 0.0, 1.0, &mut rng));
        store
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let a = make_store(1);
        let path = tmp("roundtrip");
        save_weights(&a, &path).unwrap();
        let b = make_store(2); // different init
        assert_ne!(a.params()[0].value(), b.params()[0].value());
        load_weights(&b, &path).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.value(), pb.value(), "{}", pa.name());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_store_shape() {
        let a = make_store(1);
        let path = tmp("wrong_shape");
        save_weights(&a, &path).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut other = ParamStore::new();
        other.add("layer.weight", init::xavier_uniform(&[4, 3], &mut rng));
        other.add("layer.bias", init::uniform(&[5], -1.0, 1.0, &mut rng)); // wrong dim
        other.add("emb", init::normal(&[5, 2], 0.0, 1.0, &mut rng));
        assert!(matches!(load_weights(&other, &path), Err(CheckpointError::Mismatch(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_param_count() {
        let a = make_store(1);
        let path = tmp("wrong_count");
        save_weights(&a, &path).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut other = ParamStore::new();
        other.add("layer.weight", init::xavier_uniform(&[4, 3], &mut rng));
        assert!(matches!(load_weights(&other, &path), Err(CheckpointError::Mismatch(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let store = make_store(1);
        assert!(load_weights(&store, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
