//! traffic-mem: size-class recycling of tensor backing stores.
//!
//! PR 2 moved the per-step cost of training into the kernels; what was
//! left on the profile was the allocator. Every `map`/`zip_map`/
//! `zeros`/`matmul` allocated a fresh `Vec<f32>`, and the hot shapes of
//! a training step (`[B, N, F]` activations, `[N, N]` supports) sit
//! right at the glibc mmap threshold, so steady-state training paid
//! mmap/munmap plus page-fault zeroing on every mini-batch.
//!
//! This module is the fix: a process-global, thread-safe pool of
//! `Vec<f32>` backing stores bucketed by power-of-two size class.
//! [`Buffer`] is the reference-counted handle `Tensor` wraps its data
//! in — when the last `Arc<Buffer>` drops, the heap allocation goes
//! back to its size class instead of to the allocator, and the next
//! tensor of a similar size reuses it. Because training repeats the
//! same shapes batch after batch, the pool converges to a fixed working
//! set and steady-state steps allocate ~zero.
//!
//! Guarantees:
//! - **No aliasing**: a buffer enters the pool only when its refcount
//!   hits zero, so a pooled vec is never shared with a live tensor.
//! - **Bit-identical results**: recycling only changes *where* an
//!   output buffer comes from, never what is written to it. Kernels
//!   that take a [`take_uninit`] buffer overwrite every element (debug
//!   builds poison recycled memory with NaN to enforce this); all other
//!   paths take explicitly filled buffers.
//! - **Bounded retention**: the pool retains at most `TRAFFIC_MEM_CAP`
//!   bytes (default 256 MiB); beyond the high-water mark, returned
//!   buffers are dropped. `TRAFFIC_MEM_CAP=0` disables recycling
//!   entirely — the determinism suite trains with the pool on and off
//!   and asserts bit-identical losses.
//!
//! Observable through `traffic-obs`: `mem/bytes_allocated` (fresh heap
//! bytes), `mem/pool_hits` / `mem/pool_misses` (with the derived
//! `mem/pool_hit_rate` gauge), and `mem/pool_retained_bytes`.

use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled class: 2^6 = 64 elements (256 B). Anything smaller
/// goes straight to the allocator — tiny vecs are cheap and pooling
/// them would just add lock traffic.
const MIN_CLASS_BITS: u32 = 6;
/// Largest pooled class: 2^28 elements (1 GiB). Larger one-off buffers
/// bypass the pool.
const MAX_CLASS_BITS: u32 = 28;
const N_CLASSES: usize = (MAX_CLASS_BITS - MIN_CLASS_BITS + 1) as usize;

/// Default retained-bytes high-water mark when `TRAFFIC_MEM_CAP` is
/// unset: 256 MiB, comfortably above the working set of the largest
/// model on the METR-LA shape.
const DEFAULT_CAP_BYTES: usize = 256 << 20;

/// Runtime override for the retention cap; `usize::MAX` means "use the
/// `TRAFFIC_MEM_CAP` env var / default". Tests and benches flip this to
/// compare pooled vs unpooled runs in one process, mirroring
/// [`crate::pool::ThreadCapGuard`].
static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Bytes currently retained across all free lists.
static RETAINED: AtomicUsize = AtomicUsize::new(0);

struct MemMetrics {
    hits: &'static traffic_obs::Counter,
    misses: &'static traffic_obs::Counter,
    bytes_allocated: &'static traffic_obs::Counter,
    retained_bytes: &'static traffic_obs::Gauge,
    hit_rate: &'static traffic_obs::Gauge,
}

fn metrics() -> &'static MemMetrics {
    static METRICS: OnceLock<MemMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MemMetrics {
        hits: traffic_obs::counter("mem/pool_hits"),
        misses: traffic_obs::counter("mem/pool_misses"),
        bytes_allocated: traffic_obs::counter("mem/bytes_allocated"),
        retained_bytes: traffic_obs::gauge("mem/pool_retained_bytes"),
        hit_rate: traffic_obs::gauge("mem/pool_hit_rate"),
    })
}

fn classes() -> &'static [Mutex<Vec<Vec<f32>>>; N_CLASSES] {
    static CLASSES: OnceLock<[Mutex<Vec<Vec<f32>>>; N_CLASSES]> = OnceLock::new();
    CLASSES.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

/// Retention cap in bytes. `0` disables recycling entirely.
pub fn mem_cap() -> usize {
    let over = CAP_OVERRIDE.load(Ordering::Relaxed);
    if over != usize::MAX {
        return over;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TRAFFIC_MEM_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP_BYTES)
    })
}

/// Overrides the retention cap at runtime (`0` disables the pool; pass
/// `usize::MAX` to restore the `TRAFFIC_MEM_CAP` / default behaviour).
/// Determinism tests train pooled and unpooled in one process with it.
pub fn set_mem_cap(bytes: usize) {
    CAP_OVERRIDE.store(bytes, Ordering::Relaxed);
}

/// Smallest class whose buffers are guaranteed to hold `n` elements.
/// `None` when `n` is outside the pooled range.
fn class_for_request(n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let bits = usize::BITS - (n - 1).leading_zeros(); // ceil(log2(n))
    let bits = bits.max(MIN_CLASS_BITS);
    if bits > MAX_CLASS_BITS {
        None
    } else {
        Some((bits - MIN_CLASS_BITS) as usize)
    }
}

/// Class a returned buffer of this capacity belongs to: every vec in
/// class `c` has capacity ≥ 2^(MIN_CLASS_BITS + c).
fn class_for_capacity(cap: usize) -> Option<usize> {
    if cap < (1 << MIN_CLASS_BITS) {
        return None;
    }
    let bits = (usize::BITS - 1 - cap.leading_zeros()).min(MAX_CLASS_BITS); // floor(log2(cap))
    Some((bits - MIN_CLASS_BITS) as usize)
}

/// Pops a recycled vec with capacity ≥ `n`, or `None` on a pool miss.
fn pop_recycled(n: usize) -> Option<Vec<f32>> {
    if mem_cap() == 0 {
        return None;
    }
    let class = class_for_request(n)?;
    let mut list = classes()[class].lock().expect("mem pool poisoned");
    let v = list.pop()?;
    debug_assert!(v.capacity() >= n);
    RETAINED.fetch_sub(v.capacity() * 4, Ordering::Relaxed);
    Some(v)
}

fn fresh(n: usize) -> Vec<f32> {
    // Round fresh allocations up to the class size so the buffer can
    // serve any future request in its class once recycled.
    let cap = match class_for_request(n) {
        Some(class) => 1usize << (MIN_CLASS_BITS + class as u32),
        None => n,
    };
    metrics().bytes_allocated.add((cap * 4) as u64);
    Vec::with_capacity(cap)
}

fn take(n: usize) -> Vec<f32> {
    let mut prof = traffic_obs::profile::op("mem", "take");
    prof.set_bytes(n * 4);
    match pop_recycled(n) {
        Some(v) => {
            metrics().hits.inc();
            v
        }
        None => {
            metrics().misses.inc();
            fresh(n)
        }
    }
}

/// An empty vec with capacity ≥ `n`, for `extend_from_slice`-style
/// builders (`narrow`, `concat`, gathers).
pub(crate) fn take_capacity(n: usize) -> Vec<f32> {
    let mut v = take(n);
    v.clear();
    v
}

/// A vec of `n` elements all equal to `fill`.
pub(crate) fn take_filled(n: usize, fill: f32) -> Vec<f32> {
    let mut v = take(n);
    v.clear();
    v.resize(n, fill);
    v
}

/// A vec of `n` zeros.
pub(crate) fn take_zeroed(n: usize) -> Vec<f32> {
    take_filled(n, 0.0)
}

/// A vec of `n` elements with **unspecified contents** (stale data from
/// a previous tensor on a pool hit). The caller must overwrite every
/// element before the buffer is read; debug builds poison recycled
/// contents with NaN so a missed write surfaces immediately in tests.
pub(crate) fn take_uninit(n: usize) -> Vec<f32> {
    let mut v = take(n);
    #[cfg(debug_assertions)]
    {
        for x in v.iter_mut() {
            *x = f32::NAN;
        }
        v.resize(n, f32::NAN);
    }
    v.truncate(n);
    v.resize(n, 0.0);
    v
}

/// Returns a backing store to its size class, or drops it when the
/// pool is disabled, the vec is outside the pooled range, or retention
/// would exceed the high-water mark.
pub(crate) fn recycle(v: Vec<f32>) {
    let cap_bytes = v.capacity() * 4;
    if cap_bytes == 0 {
        return;
    }
    let mut prof = traffic_obs::profile::op("mem", "recycle");
    prof.set_bytes(cap_bytes);
    let limit = mem_cap();
    if limit == 0 {
        return;
    }
    let Some(class) = class_for_capacity(v.capacity()) else { return };
    if RETAINED.load(Ordering::Relaxed) + cap_bytes > limit {
        return; // high-water mark: let the allocator have it back
    }
    RETAINED.fetch_add(cap_bytes, Ordering::Relaxed);
    classes()[class].lock().expect("mem pool poisoned").push(v);
}

/// Drops every retained buffer (tests; memory-pressure escape hatch).
pub fn trim() {
    for class in classes().iter() {
        let mut list = class.lock().expect("mem pool poisoned");
        for v in list.drain(..) {
            RETAINED.fetch_sub(v.capacity() * 4, Ordering::Relaxed);
        }
    }
}

/// Bytes currently retained by the pool.
pub fn retained_bytes() -> usize {
    RETAINED.load(Ordering::Relaxed)
}

/// Pool hit rate since the last counter reset (0 when nothing was
/// requested yet). Also publishes the `mem/pool_*` gauges.
pub fn refresh_gauges() -> f64 {
    let m = metrics();
    let hits = m.hits.get() as f64;
    let total = hits + m.misses.get() as f64;
    let rate = if total > 0.0 { hits / total } else { 0.0 };
    m.hit_rate.set(rate);
    m.retained_bytes.set(retained_bytes() as f64);
    rate
}

// ---------------------------------------------------------------------
// Buffer: the refcounted backing store Tensor wraps
// ---------------------------------------------------------------------

/// The backing store of a [`crate::Tensor`], held behind an `Arc`.
/// Cloning a tensor clones the handle; mutation goes through
/// copy-on-write (`Arc::make_mut`), where [`Buffer::clone`] copies into
/// a pooled allocation. Dropping the last handle recycles the heap
/// allocation into the size-class pool.
pub struct Buffer {
    vec: Vec<f32>,
}

impl Buffer {
    /// Wraps an existing vec without copying.
    pub(crate) fn from_vec(vec: Vec<f32>) -> Buffer {
        Buffer { vec }
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.vec
    }

    /// Steals the vec, leaving an empty buffer behind (so the eventual
    /// drop recycles nothing).
    pub(crate) fn take_vec(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.vec)
    }
}

impl Deref for Buffer {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.vec
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Buffer {
        let mut v = take_uninit(self.vec.len());
        v.copy_from_slice(&self.vec);
        Buffer { vec: v }
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.vec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate the process-global cap/pool.
    fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn class_mapping() {
        assert_eq!(class_for_request(0), None);
        assert_eq!(class_for_request(1), Some(0));
        assert_eq!(class_for_request(64), Some(0));
        assert_eq!(class_for_request(65), Some(1));
        assert_eq!(class_for_request(128), Some(1));
        assert_eq!(class_for_request(1 << 28), Some(N_CLASSES - 1));
        assert_eq!(class_for_request((1 << 28) + 1), None);
        assert_eq!(class_for_capacity(63), None);
        assert_eq!(class_for_capacity(64), Some(0));
        assert_eq!(class_for_capacity(127), Some(0));
        assert_eq!(class_for_capacity(128), Some(1));
    }

    #[test]
    fn recycle_roundtrip_reuses_capacity() {
        let _guard = pool_lock();
        set_mem_cap(usize::MAX);
        trim();
        let v = take_filled(100, 1.0);
        let cap = v.capacity();
        assert!(cap >= 128, "fresh alloc rounds up to class size, got {cap}");
        recycle(v);
        assert_eq!(retained_bytes(), cap * 4);
        let w = take_filled(100, 2.0);
        assert_eq!(w.capacity(), cap, "same-class request must reuse the buffer");
        assert_eq!(retained_bytes(), 0);
        assert!(w.iter().all(|&x| x == 2.0));
        trim();
    }

    #[test]
    fn cap_zero_disables_recycling() {
        let _guard = pool_lock();
        set_mem_cap(0);
        trim();
        let v = take_filled(256, 1.0);
        recycle(v);
        assert_eq!(retained_bytes(), 0, "disabled pool must retain nothing");
        set_mem_cap(usize::MAX);
    }

    #[test]
    fn high_water_mark_drops_excess() {
        let _guard = pool_lock();
        trim();
        set_mem_cap(1024); // one 256-element buffer (1 KiB) fits, no more
        recycle(Vec::with_capacity(256));
        assert_eq!(retained_bytes(), 1024);
        recycle(Vec::with_capacity(256));
        assert_eq!(retained_bytes(), 1024, "second buffer exceeds the cap and is dropped");
        set_mem_cap(usize::MAX);
        trim();
    }

    #[test]
    fn take_uninit_has_requested_len() {
        let _guard = pool_lock();
        set_mem_cap(usize::MAX);
        trim();
        recycle(take_filled(300, 7.0));
        let v = take_uninit(200);
        assert_eq!(v.len(), 200);
        let w = take_uninit(500);
        assert_eq!(w.len(), 500);
        trim();
    }

    #[test]
    fn tiny_and_huge_requests_bypass_pool() {
        let _guard = pool_lock();
        set_mem_cap(usize::MAX);
        trim();
        recycle(take_filled(8, 1.0)); // capacity 64 (min class) — pooled
        let before = retained_bytes();
        recycle(Vec::with_capacity(16)); // below min class — dropped
        assert_eq!(retained_bytes(), before);
        trim();
    }

    #[test]
    fn buffer_drop_recycles() {
        let _guard = pool_lock();
        set_mem_cap(usize::MAX);
        trim();
        let b = Buffer::from_vec(take_filled(1000, 3.0));
        assert_eq!(retained_bytes(), 0);
        let cap = b.vec.capacity();
        drop(b);
        assert_eq!(retained_bytes(), cap * 4);
        trim();
    }

    #[test]
    fn buffer_clone_is_independent() {
        let _guard = pool_lock();
        let a = Buffer::from_vec(vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        b.as_mut_slice()[0] = 9.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 9.0);
    }
}
