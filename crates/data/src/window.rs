//! Sliding-window sample construction: `T' = 12` historical steps in,
//! `T = 12` future steps out (paper §V), with the two input features the
//! paper uses — the z-scored traffic value and the min-max-normalised
//! time-of-day.

use traffic_tensor::Tensor;

use crate::dataset::TrafficDataset;
use crate::normalize::ZScore;
use crate::split::{paper_split, SplitRanges};

/// Windowed samples for one split.
#[derive(Clone)]
pub struct WindowedData {
    /// Inputs `[S, T_in, N, 2]`: features are (z-scored value, time-of-day).
    pub x: Tensor,
    /// Targets on the original scale `[S, T_out, N]` (missing = 0).
    pub y_raw: Tensor,
    /// Z-scored targets `[S, T_out, N]`.
    pub y_norm: Tensor,
    /// For each sample, the absolute step index of its first target step
    /// in the source series (used by the difficult-interval evaluation).
    pub target_start: Vec<usize>,
}

impl WindowedData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.shape()[0]
    }

    /// True when the split produced no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keeps only the first `n` samples (CPU-budget knob for evaluation).
    /// A no-op when `n >= len`.
    pub fn truncate(&self, n: usize) -> WindowedData {
        if n >= self.len() {
            return self.clone();
        }
        WindowedData {
            x: self.x.narrow(0, 0, n),
            y_raw: self.y_raw.narrow(0, 0, n),
            y_norm: self.y_norm.narrow(0, 0, n),
            target_start: self.target_start[..n].to_vec(),
        }
    }

    /// Keeps every `k`-th sample starting at 0 (spreads a budget across the
    /// whole split instead of only its head).
    pub fn stride(&self, k: usize) -> WindowedData {
        assert!(k >= 1);
        if k == 1 {
            return self.clone();
        }
        let idx: Vec<usize> = (0..self.len()).step_by(k).collect();
        WindowedData {
            x: self.x.index_select0(&idx),
            y_raw: self.y_raw.index_select0(&idx),
            y_norm: self.y_norm.index_select0(&idx),
            target_start: idx.iter().map(|&i| self.target_start[i]).collect(),
        }
    }
}

/// A fully prepared dataset: scaler fit on train, three windowed splits.
pub struct PreparedData {
    /// Z-score scaler fitted on the training range only.
    pub scaler: ZScore,
    /// Training samples.
    pub train: WindowedData,
    /// Validation samples.
    pub val: WindowedData,
    /// Test samples.
    pub test: WindowedData,
    /// Input horizon.
    pub t_in: usize,
    /// Output horizon.
    pub t_out: usize,
    /// Number of sensors.
    pub nodes: usize,
}

/// Builds windows entirely contained in `range` of the series.
fn window_range(
    dataset: &TrafficDataset,
    scaler: &ZScore,
    range: std::ops::Range<usize>,
    t_in: usize,
    t_out: usize,
) -> WindowedData {
    let n = dataset.num_nodes();
    let tod = dataset.time_of_day();
    let values = dataset.values.as_slice();
    let span = t_in + t_out;
    let count = range.len().saturating_sub(span - 1);
    let mut x = Vec::with_capacity(count * t_in * n * 2);
    let mut y_raw = Vec::with_capacity(count * t_out * n);
    let mut y_norm = Vec::with_capacity(count * t_out * n);
    let mut target_start = Vec::with_capacity(count);
    for s in 0..count {
        let start = range.start + s;
        for dt in 0..t_in {
            let t = start + dt;
            let tv = tod.at(&[t]);
            for i in 0..n {
                let v = values[t * n + i];
                x.push((v - scaler.mean) / scaler.std);
                x.push(tv);
            }
        }
        for dt in 0..t_out {
            let t = start + t_in + dt;
            for i in 0..n {
                let v = values[t * n + i];
                y_raw.push(v);
                y_norm.push((v - scaler.mean) / scaler.std);
            }
        }
        target_start.push(start + t_in);
    }
    WindowedData {
        x: Tensor::from_vec(x, &[count, t_in, n, 2]),
        y_raw: Tensor::from_vec(y_raw, &[count, t_out, n]),
        y_norm: Tensor::from_vec(y_norm, &[count, t_out, n]),
        target_start,
    }
}

/// Prepares a dataset with the paper's 7:1:2 split and `T' = T = 12`
/// windows (both configurable).
pub fn prepare(dataset: &TrafficDataset, t_in: usize, t_out: usize) -> PreparedData {
    prepare_with_split(dataset, t_in, t_out, paper_split(dataset.num_steps()))
}

/// Prepares a dataset with an explicit split.
pub fn prepare_with_split(
    dataset: &TrafficDataset,
    t_in: usize,
    t_out: usize,
    split: SplitRanges,
) -> PreparedData {
    assert!(t_in >= 1 && t_out >= 1);
    let train_values = dataset.values.narrow(0, split.train.start, split.train.len());
    let scaler = ZScore::fit(&train_values);
    PreparedData {
        train: window_range(dataset, &scaler, split.train.clone(), t_in, t_out),
        val: window_range(dataset, &scaler, split.val.clone(), t_in, t_out),
        test: window_range(dataset, &scaler, split.test.clone(), t_in, t_out),
        scaler,
        t_in,
        t_out,
        nodes: dataset.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Task;
    use crate::simulate::{simulate, SimConfig};

    fn tiny() -> TrafficDataset {
        simulate(&SimConfig::new("w", Task::Speed, 6, 4))
    }

    #[test]
    fn shapes() {
        let d = tiny();
        let p = prepare(&d, 12, 12);
        assert_eq!(p.train.x.shape()[1..], [12, 6, 2]);
        assert_eq!(p.train.y_raw.shape()[1..], [12, 6]);
        // count = range_len - (t_in + t_out) + 1
        let expect = (d.num_steps() * 7 / 10) - 23;
        assert_eq!(p.train.len(), expect);
        assert_eq!(p.train.target_start.len(), p.train.len());
    }

    #[test]
    fn splits_do_not_leak() {
        let d = tiny();
        let p = prepare(&d, 12, 12);
        // Last train window's final target step < first val window's input start.
        let train_last_target = *p.train.target_start.last().unwrap() + 11;
        let val_first_input = p.val.target_start[0] - 12;
        assert!(train_last_target < val_first_input + 12 + 12);
        // Stronger: train windows stay inside the train range.
        let split = paper_split(d.num_steps());
        assert!(train_last_target < split.train.end);
        assert!(val_first_input >= split.val.start);
    }

    #[test]
    fn normalized_input_matches_scaler() {
        let d = tiny();
        let p = prepare(&d, 3, 2);
        let raw0 = d.values.at(&[0, 0]);
        let got = p.train.x.at(&[0, 0, 0, 0]);
        let expect = (raw0 - p.scaler.mean) / p.scaler.std;
        assert!((got - expect).abs() < 1e-5);
    }

    #[test]
    fn tod_feature_in_unit_interval() {
        let d = tiny();
        let p = prepare(&d, 12, 12);
        let x = p.train.x.as_slice();
        // feature 1 of every (s, t, n)
        let mut i = 1;
        while i < x.len() {
            assert!((0.0..1.0).contains(&x[i]));
            i += 2;
        }
    }

    #[test]
    fn y_norm_consistent_with_y_raw() {
        let d = tiny();
        let p = prepare(&d, 4, 4);
        let s = p.scaler;
        for idx in [0usize, 5, 10] {
            let raw = p.test.y_raw.at(&[idx, 0, 0]);
            let norm = p.test.y_norm.at(&[idx, 0, 0]);
            assert!(((raw - s.mean) / s.std - norm).abs() < 1e-5);
        }
    }

    #[test]
    fn target_start_points_at_source() {
        let d = tiny();
        let p = prepare(&d, 4, 4);
        let s0 = p.test.target_start[0];
        let from_dataset = d.values.at(&[s0, 2]);
        let from_window = p.test.y_raw.at(&[0, 0, 2]);
        assert_eq!(from_dataset, from_window);
    }

    #[test]
    fn short_range_produces_empty_split() {
        let d = tiny();
        // t_in + t_out bigger than the val split => empty val is fine
        let split = SplitRanges { train: 0..900, val: 900..910, test: 910..d.num_steps() };
        let p = prepare_with_split(&d, 12, 12, split);
        assert!(p.val.is_empty());
        assert!(!p.train.is_empty());
    }
}
