//! Extension experiment answering the paper's future-work question: *why*
//! does model performance differ by traffic pattern? Decomposes each
//! model's test error into free-flow / recurring-congestion / abrupt
//! regimes.
//!
//! ```text
//! cargo run --release --example regime_analysis [-- --scale smoke|quick] \
//!     [--models Graph-WaveNet,GMAN,ASTGCN]
//! ```

use traffic_suite::core::{
    decompose, eval_split, format_table, predict, prepare_experiment, train_model, Regime,
};
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let models: Vec<String> = std::env::args()
        .skip_while(|a| a != "--models")
        .nth(1)
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| {
            vec!["Graph-WaveNet".into(), "GMAN".into(), "ASTGCN".into(), "ST-MetaNet".into()]
        });
    println!("== Regime decomposition on METR-LA ==\n");
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let mut rows = Vec::new();
    for name in &models {
        let (model, _) = train_model(name, &exp, &scale, 7);
        let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
        let parts = decompose(&pred, &test, &exp.dataset);
        let get = |r: Regime| parts.iter().find(|(x, _)| *x == r).map(|(_, m)| *m).unwrap();
        let (ff, rc, ab) = (get(Regime::FreeFlow), get(Regime::Recurring), get(Regime::Abrupt));
        rows.push(vec![
            name.clone(),
            format!("{:.3} ({})", ff.mae, ff.count),
            format!("{:.3} ({})", rc.mae, rc.count),
            format!("{:.3} ({})", ab.mae, ab.count),
            format!("{:.1}×", ab.mae / ff.mae),
        ]);
    }
    print!(
        "{}",
        format_table(
            &["Model", "Free-flow MAE (n)", "Recurring MAE (n)", "Abrupt MAE (n)", "Abrupt/Free"],
            &rows
        )
    );
    println!("\nThe abrupt/free ratio quantifies the paper's Fig 3 observation per model:");
    println!("smooth conditions are easy for everyone; abrupt changes separate the field.");
}
