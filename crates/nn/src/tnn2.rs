//! `TNN2`: the versioned, sectioned, CRC-checked container used by
//! full-state training checkpoints, plus the atomic-write path shared
//! with the legacy `TNN1` weight files.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! magic  "TNN2"            4 bytes
//! version u32              currently 1
//! section count u32
//! per section:
//!   name length u32 | name bytes (UTF-8)
//!   payload length u64
//!   payload CRC32 (IEEE) u32
//!   payload bytes
//! ```
//!
//! Readers verify magic, version, and every section's CRC before
//! returning any payload, so a torn, truncated, or bit-flipped file is
//! rejected as [`CheckpointError::Corrupt`] instead of being decoded
//! into garbage training state. Unknown section names are preserved and
//! ignored by consumers, which is the format's forward-compatibility
//! story: new writers may add sections without breaking old readers.
//!
//! ## Atomic writes
//!
//! [`atomic_write`] stages the bytes in a `.tmp.<pid>` sibling, fsyncs
//! it, renames it over the destination, and best-effort-fsyncs the
//! directory. A crash at any point leaves either the old file or the
//! new file, never a torn hybrid. The `ckpt_io` fault site (see
//! `traffic_obs::faults`) can inject a write failure here for
//! resilience tests.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use traffic_tensor::Tensor;

use crate::checkpoint::CheckpointError;

/// File magic for the sectioned format.
pub const MAGIC: &[u8; 4] = b"TNN2";
/// Current format version.
pub const VERSION: u32 = 1;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven, computed at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 of `bytes` (the common zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Little-endian payload encoding helpers
// ---------------------------------------------------------------------

/// Appends primitives and tensors to a byte payload.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` (bit pattern, so NaNs survive round trips).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a tensor: rank, dims, raw f32 data.
    pub fn tensor(&mut self, t: &Tensor) {
        self.u32(t.shape().len() as u32);
        for &d in t.shape() {
            self.u64(d as u64);
        }
        for &v in t.as_slice() {
            self.f32(v);
        }
    }

    /// Appends `Some(tensor)` / `None` with a presence flag (lazy
    /// optimizer moments).
    pub fn opt_tensor(&mut self, t: Option<&Tensor>) {
        match t {
            Some(t) => {
                self.u32(1);
                self.tensor(t);
            }
            None => self.u32(0),
        }
    }
}

/// Reads primitives and tensors back out of a payload.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Starts reading at the payload's first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CheckpointError::Corrupt("payload truncated".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-UTF8 string".into()))
    }

    /// Reads a tensor written by [`PayloadWriter::tensor`].
    pub fn tensor(&mut self) -> Result<Tensor, CheckpointError> {
        let rank = self.u32()? as usize;
        if rank > 16 {
            return Err(CheckpointError::Corrupt(format!("implausible tensor rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.u64()? as usize);
        }
        let numel: usize = shape.iter().product();
        if numel.checked_mul(4).is_none_or(|bytes| self.pos + bytes > self.buf.len()) {
            return Err(CheckpointError::Corrupt(format!(
                "tensor data truncated (shape {shape:?})"
            )));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(self.f32()?);
        }
        Ok(Tensor::from_vec(data, &shape))
    }

    /// Reads an optional tensor written by [`PayloadWriter::opt_tensor`].
    pub fn opt_tensor(&mut self) -> Result<Option<Tensor>, CheckpointError> {
        match self.u32()? {
            0 => Ok(None),
            1 => Ok(Some(self.tensor()?)),
            f => Err(CheckpointError::Corrupt(format!("bad presence flag {f}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Container encode / decode
// ---------------------------------------------------------------------

/// Serialises named sections into one `TNN2` byte blob.
pub fn encode(sections: &[(&str, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in sections {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Parses a `TNN2` blob, verifying magic, version, and every CRC.
pub fn decode(bytes: &[u8]) -> Result<Vec<(String, Vec<u8>)>, CheckpointError> {
    let mut r = PayloadReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic (not a TNN2 checkpoint)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported TNN2 version {version} (reader supports {VERSION})"
        )));
    }
    let count = r.u32()? as usize;
    let mut sections = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = r.str()?;
        let len = r.u64()? as usize;
        let crc = r.u32()?;
        let payload = r.take(len)?;
        if crc32(payload) != crc {
            return Err(CheckpointError::Corrupt(format!("CRC mismatch in section {name:?}")));
        }
        sections.push((name, payload.to_vec()));
    }
    if !r.is_empty() {
        return Err(CheckpointError::Corrupt("trailing bytes after last section".into()));
    }
    Ok(sections)
}

/// Writes a `TNN2` file atomically.
pub fn write_file(path: &Path, sections: &[(&str, Vec<u8>)]) -> Result<(), CheckpointError> {
    atomic_write(path, &encode(sections))?;
    Ok(())
}

/// Reads and verifies a `TNN2` file.
pub fn read_file(path: &Path) -> Result<Vec<(String, Vec<u8>)>, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Crash-safe file replacement: write a temp sibling, fsync, rename over
/// `path`, fsync the directory (best effort). The `ckpt_io` fault site
/// can inject a failure before any byte is staged.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if traffic_obs::faults::fire("ckpt_io").is_some() {
        return Err(std::io::Error::other("injected checkpoint I/O fault (ckpt_io)"));
    }
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            std::fs::create_dir_all(d)?;
            Some(d)
        }
        _ => None,
    };
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
        return result;
    }
    if let Some(d) = dir {
        // Directory fsync makes the rename itself durable; not all
        // platforms allow opening a directory for write, so best effort.
        if let Ok(df) = File::open(d) {
            df.sync_all().ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("traffic_tnn2_{name}_{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip() {
        let mut p = PayloadWriter::new();
        p.u64(42);
        p.str("hello");
        p.tensor(&Tensor::from_vec(vec![1.0, f32::NAN, -3.5], &[3]));
        p.opt_tensor(None);
        p.opt_tensor(Some(&Tensor::zeros(&[2, 2])));
        let sections = vec![("meta", p.into_bytes()), ("empty", Vec::new())];
        let path = tmp("roundtrip");
        write_file(&path, &sections).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "meta");
        let mut r = PayloadReader::new(&back[0].1);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.str().unwrap(), "hello");
        let t = r.tensor().unwrap();
        assert_eq!(t.shape(), &[3]);
        assert!(t.as_slice()[1].is_nan()); // NaN bit pattern survives
        assert_eq!(r.opt_tensor().unwrap(), None);
        assert_eq!(r.opt_tensor().unwrap().unwrap().shape(), &[2, 2]);
        assert!(r.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_byte_is_rejected() {
        let sections = vec![("w", vec![1u8, 2, 3, 4, 5, 6, 7, 8])];
        let mut bytes = encode(&sections);
        // Flip one payload byte (the payload is at the tail).
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        match decode(&bytes) {
            Err(CheckpointError::Corrupt(m)) => assert!(m.contains("CRC"), "{m}"),
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let sections = vec![("w", vec![0u8; 64])];
        let bytes = encode(&sections);
        for cut in [3, 9, 13, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(CheckpointError::Corrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&[("w", vec![1u8])]);
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn atomic_write_replaces_not_tears() {
        let path = tmp("atomic");
        std::fs::write(&path, b"old contents").unwrap();
        atomic_write(&path, b"new contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        // No temp litter left behind.
        let tmp_sibling = path.with_extension(format!("tmp.{}", std::process::id()));
        assert!(!tmp_sibling.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_io_fault_leaves_old_file_intact() {
        let _g = fault_lock();
        let path = tmp("fault");
        std::fs::write(&path, b"good checkpoint").unwrap();
        traffic_obs::faults::reset();
        traffic_obs::faults::arm("ckpt_io", 1, traffic_obs::faults::FaultMode::Soft);
        let err = atomic_write(&path, b"doomed").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(std::fs::read(&path).unwrap(), b"good checkpoint");
        traffic_obs::faults::reset();
        // Subsequent writes succeed (one-shot fault).
        atomic_write(&path, b"after").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"after");
        std::fs::remove_file(&path).ok();
    }

    /// Fault state is process-global; serialise fault-arming tests.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
