//! Batched matrix multiplication with broadcasting over leading axes.
//!
//! Products are computed by the blocked, register-tiled kernel in
//! [`crate::gemm`] and scheduled on the persistent worker pool
//! ([`crate::pool`]): tasks are `(batch, row-block)` slices of the
//! output, so a batch-1 `[N, N] · [N, F]` graph-conv product — the hot
//! shape of every model's forward pass — uses every core, not just one.
//! Accumulation order per output element never changes with the task
//! split, so results are bit-identical at any `TRAFFIC_THREADS`.

use crate::gemm;
use crate::pool;
use crate::shape::{broadcast_shapes, broadcast_strides, numel};
use crate::tensor::Tensor;

/// Below this many flops a multiply runs inline on the calling thread;
/// dispatch overhead beats any parallel win.
const PAR_FLOPS: usize = 1 << 17;

impl Tensor {
    /// Batched matrix product.
    ///
    /// Shapes `[..., m, k] · [..., k, n] -> [..., m, n]`; leading (batch)
    /// axes broadcast like elementwise ops. Rank-1 operands are promoted to
    /// row/column matrices and the promoted axis removed from the result.
    ///
    /// ```
    /// use traffic_tensor::Tensor;
    /// let batch = Tensor::ones(&[4, 2, 3]);       // 4 matrices of 2×3
    /// let weights = Tensor::ones(&[3, 5]);        // shared 3×5
    /// assert_eq!(batch.matmul(&weights).shape(), &[4, 2, 5]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        // Promote rank-1 operands by reference; already-matrix operands
        // are borrowed as-is (no Tensor clone on the fast path).
        let promoted_a;
        let (a, squeeze_m) = if self.rank() == 1 {
            promoted_a = self.reshape(&[1, self.shape()[0]]);
            (&promoted_a, true)
        } else {
            (self, false)
        };
        let promoted_b;
        let (b, squeeze_n) = if other.rank() == 1 {
            promoted_b = other.reshape(&[other.shape()[0], 1]);
            (&promoted_b, true)
        } else {
            (other, false)
        };
        let t = a.matmul_general(b, false, false);
        let out_shape = t.shape().to_vec();
        // Undo rank-1 promotions.
        match (squeeze_m, squeeze_n) {
            (false, false) => t,
            (true, false) => {
                let mut s = out_shape;
                s.remove(s.len() - 2);
                t.reshape(&s)
            }
            (false, true) => {
                let mut s = out_shape;
                s.pop();
                t.reshape(&s)
            }
            (true, true) => t.reshape(&[]),
        }
    }

    /// `selfᵀ · other` without materialising the transpose: `self` is
    /// read as if its last two axes were swapped. Bit-identical to
    /// `self.t().matmul(other)` — the kernel packs the same values in
    /// the same `k`-ascending order, it just reads them from transposed
    /// storage. Both operands must have rank ≥ 2.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.matmul_general(other, true, false)
    }

    /// `self · otherᵀ` without materialising the transpose (see
    /// [`Tensor::matmul_tn`]); bit-identical to
    /// `self.matmul(&other.t())`. Both operands must have rank ≥ 2.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.matmul_general(other, false, true)
    }

    /// Shared batched-GEMM driver. `ta` / `tb` read the corresponding
    /// operand with its last two axes logically swapped, feeding the
    /// transposed-storage kernels in [`crate::gemm`] — no `.t()` copy.
    fn matmul_general(&self, other: &Tensor, ta: bool, tb: bool) -> Tensor {
        let (a, b) = (self, other);
        assert!(a.rank() >= 2 && b.rank() >= 2, "matmul_general requires rank >= 2 operands");
        let (a_rows, a_cols) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
        let (b_rows, b_cols) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
        let (m, ka) = if ta { (a_cols, a_rows) } else { (a_rows, a_cols) };
        let (kb, n) = if tb { (b_cols, b_rows) } else { (b_rows, b_cols) };
        assert_eq!(
            ka,
            kb,
            "matmul inner-dimension mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let a_batch = &a.shape()[..a.rank() - 2];
        let b_batch = &b.shape()[..b.rank() - 2];
        let batch = broadcast_shapes(a_batch, b_batch).unwrap_or_else(|| {
            panic!("matmul batch-dimension mismatch: {:?} · {:?}", self.shape(), other.shape())
        });
        let nbatch = numel(&batch);

        // Per-batch flat offsets (in whole matrices) into a and b,
        // computed once with an odometer over the broadcast strides —
        // no per-batch unravel in the hot path.
        let a_mat = a_rows * a_cols;
        let b_mat = b_rows * b_cols;
        let offsets = batch_offsets(&batch, a_batch, b_batch);

        let mut out_shape = batch.clone();
        out_shape.push(m);
        out_shape.push(n);
        // The overwrite-mode kernels fully write their output (first
        // k-block stores instead of accumulating), so the buffer can
        // come back from the pool dirty — no memset pass.
        let mut out = crate::mem::take_uninit(nbatch * m * n);
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        let total_flops = 2 * nbatch * m * ka * n;
        let timer = std::time::Instant::now();
        let orient = match (ta, tb) {
            (false, false) => "nn",
            (true, false) => "tn",
            (false, true) => "nt",
            (true, true) => "tt",
        };
        let mut prof = traffic_obs::profile::op("gemm", orient);
        prof.set_flops(total_flops);
        prof.set_bytes((a_data.len() + b_data.len() + out.len()) * 4);
        // One output matrix: a · b slices for batch bi, through the
        // kernel matching the operand orientations.
        let run_one = |bi: usize, dst: &mut [f32], scratch: &mut Vec<f32>| {
            let (a_off, b_off) = offsets[bi];
            let a_sl = &a_data[a_off * a_mat..(a_off + 1) * a_mat];
            let b_sl = &b_data[b_off * b_mat..(b_off + 1) * b_mat];
            match (ta, tb) {
                (false, false) => gemm::gemm_overwrite(a_sl, b_sl, dst, m, ka, n),
                (true, false) => gemm::gemm_overwrite_at(a_sl, b_sl, dst, m, ka, n),
                (false, true) => {
                    let need = gemm::bt_scratch_len(ka, n);
                    if scratch.len() < need {
                        *scratch = crate::mem::take_uninit(need);
                    }
                    gemm::gemm_overwrite_bt(a_sl, b_sl, scratch, dst, m, ka, n)
                }
                (true, true) => unreachable!("no caller transposes both operands"),
            }
        };
        let parallel = total_flops >= PAR_FLOPS && pool::effective_threads() > 1;
        if !parallel {
            let mut scratch = Vec::new();
            for (bi, dst) in out.chunks_mut(m * n).enumerate() {
                run_one(bi, dst, &mut scratch);
            }
            crate::mem::recycle(scratch);
        } else if ta || tb {
            // Transposed operands parallelise over whole batch matrices
            // (row-splitting would re-pack the shared panel per block).
            pool::parallel_chunks_mut(&mut out, m * n, |bi, dst| {
                let mut scratch = Vec::new();
                run_one(bi, dst, &mut scratch);
                crate::mem::recycle(scratch);
            });
        } else {
            // Task space: (batch, row-block). Small batches still get
            // intra-matrix parallelism; big batches split per matrix.
            let threads = pool::effective_threads();
            let blocks_per_batch = (threads * 2 / nbatch).clamp(1, m.max(1));
            let rows_per_block = m.div_ceil(blocks_per_batch).max(1);
            let mut ranges = Vec::with_capacity(nbatch * blocks_per_batch);
            let mut tasks = Vec::with_capacity(nbatch * blocks_per_batch);
            for bi in 0..nbatch {
                let mut r0 = 0;
                while r0 < m {
                    let rows = rows_per_block.min(m - r0);
                    ranges.push(bi * m * n + r0 * n..bi * m * n + (r0 + rows) * n);
                    tasks.push((bi, r0, rows));
                    r0 += rows;
                }
            }
            pool::parallel_ranges_mut(&mut out, &ranges, |ti, dst| {
                let (bi, r0, rows) = tasks[ti];
                let (a_off, b_off) = offsets[bi];
                let a_base = a_off * a_mat + r0 * ka;
                gemm::gemm_overwrite(
                    &a_data[a_base..a_base + rows * ka],
                    &b_data[b_off * b_mat..(b_off + 1) * b_mat],
                    dst,
                    rows,
                    ka,
                    n,
                );
            });
        }
        gemm::record_flops(total_flops, timer.elapsed().as_secs_f64());
        Tensor::from_vec(out, &out_shape)
    }
}

/// Flat `(a, b)` matrix offsets for every broadcast batch index,
/// generated by a single odometer sweep (one allocation total).
fn batch_offsets(batch: &[usize], a_batch: &[usize], b_batch: &[usize]) -> Vec<(usize, usize)> {
    let nbatch = numel(batch);
    let a_bstr = broadcast_strides(a_batch, batch);
    let b_bstr = broadcast_strides(b_batch, batch);
    let mut offsets = Vec::with_capacity(nbatch);
    let mut coords = vec![0usize; batch.len()];
    let mut a_off = 0usize;
    let mut b_off = 0usize;
    for _ in 0..nbatch {
        offsets.push((a_off, b_off));
        for axis in (0..batch.len()).rev() {
            coords[axis] += 1;
            a_off += a_bstr[axis];
            b_off += b_bstr[axis];
            if coords[axis] < batch[axis] {
                break;
            }
            a_off -= coords[axis] * a_bstr[axis];
            b_off -= coords[axis] * b_bstr[axis];
            coords[axis] = 0;
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn batched_broadcast() {
        // [2, 2, 3] · [3, 2] -> [2, 2, 2]
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(6).reshape(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // first batch, first row: [0,1,2]·cols of b
        assert_eq!(c.at(&[0, 0, 0]), 0.0 * 0.0 + 1.0 * 2.0 + 2.0 * 4.0);
        assert_eq!(c.at(&[1, 1, 1]), 9.0 * 1.0 + 10.0 * 3.0 + 11.0 * 5.0);
    }

    #[test]
    fn two_sided_batch_broadcast() {
        // [2, 1, 2, 3] · [1, 3, 3, 2] -> [2, 3, 2, 2]
        let a = Tensor::arange(2 * 2 * 3).reshape(&[2, 1, 2, 3]);
        let b = Tensor::arange(3 * 3 * 2).reshape(&[1, 3, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 3, 2, 2]);
        // spot-check against the per-batch product
        for (i, j) in [(0usize, 0usize), (1, 2), (0, 1)] {
            let ai = a.narrow(0, i, 1).reshape(&[2, 3]);
            let bj = b.narrow(1, j, 1).reshape(&[3, 2]);
            let want = ai.matmul(&bj);
            let got = c.narrow(0, i, 1).narrow(1, j, 1).reshape(&[2, 2]);
            assert_eq!(got, want, "batch ({i}, {j})");
        }
    }

    #[test]
    fn vec_promotions() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let vm = a.matmul(&m);
        assert_eq!(vm.shape(), &[2]);
        assert_eq!(vm.as_slice(), &[1.0, 4.0]);
        let mv = m.matmul(&a);
        assert_eq!(mv.shape(), &[2]);
        assert_eq!(mv.as_slice(), &[1.0, 4.0]);
        let dot = a.matmul(&a);
        assert_eq!(dot.shape(), &[] as &[usize]);
        assert_eq!(dot.item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn inner_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to cross the dispatch threshold; results must be
        // bit-identical to the per-batch serial kernel.
        let nb = 64;
        let (m, k, n) = (16, 16, 16);
        let a = Tensor::from_vec(
            (0..nb * m * k).map(|i| ((i % 97) as f32 - 48.0) * 0.01).collect(),
            &[nb, m, k],
        );
        let b = Tensor::from_vec(
            (0..nb * k * n).map(|i| ((i % 89) as f32 - 44.0) * 0.01).collect(),
            &[nb, k, n],
        );
        let whole = a.matmul(&b);
        for bi in [0usize, 31, 63] {
            let ai = a.narrow(0, bi, 1).reshape(&[m, k]);
            let bj = b.narrow(0, bi, 1).reshape(&[k, n]);
            let expect = ai.matmul(&bj);
            let got = whole.narrow(0, bi, 1).reshape(&[m, n]);
            assert_eq!(got, expect, "batch {bi}");
        }
    }

    #[test]
    fn batch1_intra_matrix_parallel_matches_reference() {
        // The graph-conv shape: one big [N, N] · [N, F] product, split
        // across row blocks. Must equal the naive reference kernel.
        let (m, k, n) = (203, 203, 48);
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i % 113) as f32 - 56.0) * 0.013).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i % 127) as f32 - 63.0) * 0.011).collect(),
            &[k, n],
        );
        let got = a.matmul(&b);
        let mut want = vec![0.0f32; m * n];
        crate::gemm::matmul_naive(a.as_slice(), b.as_slice(), &mut want, m, k, n);
        for (g, w) in got.as_slice().iter().zip(&want) {
            // FMA builds round each addend once instead of twice.
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn transposed_variants_match_materialized_transpose_bitwise() {
        // Shapes cross the register-tile and KC boundaries and include
        // batched + broadcast cases; results must be bit-identical to
        // materialising the transpose.
        let cases: &[(&[usize], &[usize])] = &[
            (&[7, 5], &[7, 9]),          // tn: aᵀ[5,7]·b[7,9]
            (&[300, 13], &[300, 33]),    // tn across KC
            (&[4, 20, 6], &[4, 20, 11]), // batched tn
            (&[129, 64], &[64, 300]),    // plain shapes reused below for nt
        ];
        for (ash, bsh) in cases {
            let a = Tensor::from_vec(
                (0..ash.iter().product()).map(|i| ((i % 101) as f32 - 50.0) * 0.017).collect(),
                ash,
            );
            let b = Tensor::from_vec(
                (0..bsh.iter().product()).map(|i| ((i % 83) as f32 - 41.0) * 0.019).collect(),
                bsh,
            );
            if a.shape()[a.rank() - 2] == b.shape()[b.rank() - 2] {
                let want = a.t().matmul(&b);
                let got = a.matmul_tn(&b);
                assert_eq!(got.shape(), want.shape());
                for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(g.to_bits(), w.to_bits(), "tn {ash:?}·{bsh:?}: {g} vs {w}");
                }
            }
        }
        // nt: a[m,k]·bᵀ where b is stored [n,k]; batched + broadcast.
        for (ash, bsh) in [
            (vec![5, 7], vec![9, 7]),
            (vec![13, 300], vec![33, 300]),
            (vec![4, 20, 6], vec![4, 11, 6]),
            (vec![3, 1, 8, 17], vec![5, 12, 17]), // broadcast batch axes
        ] {
            let a = Tensor::from_vec(
                (0..ash.iter().product()).map(|i| ((i % 97) as f32 - 48.0) * 0.021).collect(),
                &ash,
            );
            let b = Tensor::from_vec(
                (0..bsh.iter().product()).map(|i| ((i % 89) as f32 - 44.0) * 0.023).collect(),
                &bsh,
            );
            let want = a.matmul(&b.t());
            let got = a.matmul_nt(&b);
            assert_eq!(got.shape(), want.shape());
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits(), "nt {ash:?}·{bsh:?}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn transpose_identity() {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::arange(12).reshape(&[3, 4]);
        let lhs = a.matmul(&b).t();
        let rhs = b.t().matmul(&a.t());
        assert_eq!(lhs, rhs);
    }
}
