//! Pre-traffic-mem training-step baseline harness.
//!
//! This file is NOT built as part of the workspace. `scripts/
//! bench_train.sh --prepr` copies it into a detached git worktree of
//! the commit *before* the traffic-mem PR, registers it as a bench
//! target there, and runs it to measure the true pre-PR steady-state
//! training-step time on the exact workload `train_step.rs` uses
//! (same simulated METR-LA shape, same seeds, same warmup/measure
//! schedule). The numbers feed `BENCH_train.json` as the `baseline`
//! entries, so the reported speedup compares the shipping engine
//! against the engine as it existed before the PR — not against a
//! pool-off ablation that already benefits from the PR's kernels.
//!
//! It intentionally uses only APIs that exist at the pre-PR commit:
//! a fresh `Tape` per step and the (then only) allocating `Adam::step`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_core::TrainConfig;
use traffic_data::{batches, prepare, simulate, Batch, SimConfig, Task};
use traffic_models::{build_model, train_horizon, GraphContext, TrainCtx};
use traffic_nn::loss::{masked_mae, null_mask};
use traffic_nn::Adam;
use traffic_tensor::{pool, Tape};

/// Thread CPU nanoseconds (`/proc/thread-self/schedstat` field 1) —
/// immune to scheduler steal on shared hosts; 0 where unsupported.
fn thread_cpu_ns() -> u64 {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()))
        .unwrap_or(0)
}

fn run(
    model_name: &str,
    ctx: &GraphContext,
    batch_set: &[Batch],
    t_out: usize,
    cfg: &TrainConfig,
    warmup: usize,
    measure: usize,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = build_model(model_name, ctx, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let horizon = train_horizon(model_name, t_out);
    let mut times = Vec::with_capacity(measure);
    let mut cpu_times = Vec::with_capacity(measure);
    for step in 0..warmup + measure {
        let t_step = Instant::now();
        let cpu0 = thread_cpu_ns();
        let batch = &batch_set[step % batch_set.len()];
        let tape = Tape::new();
        let x = tape.constant(batch.x.clone());
        let y_norm = batch.y_norm.narrow(1, 0, horizon);
        let y_raw = batch.y_raw.narrow(1, 0, horizon);
        let mut tctx =
            TrainCtx { rng: &mut rng, teacher: Some(&batch.y_norm), teacher_prob: 0.5 };
        let pred = model.forward(&tape, x, Some(&mut tctx));
        let mask = null_mask(&y_raw, 1e-3);
        let loss = masked_mae(&tape, pred, &y_norm, &mask);
        let grads = tape.backward(loss);
        model.store().zero_grads();
        model.store().capture_grads(&tape, &grads);
        model.store().clip_grad_norm(cfg.grad_clip);
        opt.step(model.store());
        if step >= warmup {
            times.push(t_step.elapsed().as_secs_f64());
            cpu_times.push((thread_cpu_ns() - cpu0) as f64 * 1e-9);
        }
    }
    times.sort_by(f64::total_cmp);
    cpu_times.sort_by(f64::total_cmp);
    (times[times.len() / 2], cpu_times[cpu_times.len() / 2])
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    // Must mirror train_step.rs exactly so the comparison is apples to
    // apples: METR-LA shape, same seeds, same batch cycle.
    let (nodes, batch_size, warmup, measure) =
        if smoke { (16, 8, 1, 2) } else { (207, 16, 3, 25) };
    pool::warmup();

    let mut sim = SimConfig::new("bench-train", Task::Speed, nodes, 2);
    sim.missing_rate = 0.0;
    let ds = simulate(&sim);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let cfg = TrainConfig { batch_size, ..Default::default() };
    let mut shuffle = StdRng::seed_from_u64(cfg.seed);
    let batch_set: Vec<Batch> =
        batches(&data.train, batch_size, Some(&mut shuffle)).take(8).collect();

    for model_name in ["STGCN", "Graph-WaveNet"] {
        eprintln!("benchmarking {model_name} (pre-PR engine)...");
        let (wall, cpu) = run(model_name, &ctx, &batch_set, data.t_out, &cfg, warmup, measure);
        // Machine-readable: PREPR <model> <wall_secs> <cpu_secs>
        println!("PREPR {model_name} {wall:.6} {cpu:.6}");
    }
}
