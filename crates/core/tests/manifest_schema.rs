//! Golden manifest replay: a smoke training run under the full
//! telemetry stack (JSONL sink, profiler, insight sampling, system
//! sampler) must emit only events that round-trip through the bundled
//! JSON parser and are accepted by the run store's indexer. Lives in
//! its own binary with a single `#[test]` because it installs global
//! sinks, which concurrent tests in the same process would observe.

use std::collections::BTreeSet;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_core::{train, TrainConfig};
use traffic_data::{prepare, simulate, SimConfig, Task};
use traffic_models::{build_model, GraphContext};
use traffic_obs::store::{RunStore, RunSummary};
use traffic_obs::{html, json};

#[test]
fn every_emitted_event_round_trips_through_the_store() {
    let dir = std::env::temp_dir().join("traffic_manifest_schema_test");
    let _ = std::fs::remove_dir_all(&dir);

    let run = traffic_obs::Run::named("schema-check")
        .jsonl(dir.join("runs"))
        .profiled(dir.join("profiles"))
        .system_sampler(Duration::from_millis(20))
        .start()
        .expect("temp dir writable");
    let manifest = run.manifest_path().expect("jsonl requested").to_path_buf();

    let ds = simulate(&SimConfig::new("schema", Task::Speed, 6, 4));
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = StdRng::seed_from_u64(1);
    let model = build_model("STGCN", &ctx, &mut rng);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_batches_per_epoch: Some(4),
        insight_every: Some(2),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    assert_eq!(report.epoch_losses.len(), 2, "smoke train must complete");
    // Let the 20ms system sampler land at least one more sample.
    std::thread::sleep(Duration::from_millis(50));
    run.finish();

    // Every line is valid JSON and the store's accept() takes each one.
    let content = std::fs::read_to_string(&manifest).expect("manifest written");
    let mut replayed = RunSummary::default();
    let mut kinds: BTreeSet<String> = BTreeSet::new();
    for (i, line) in content.lines().enumerate() {
        let ev = json::parse(line)
            .unwrap_or_else(|e| panic!("line {} must parse: {e:?}\n{line}", i + 1));
        let kind = ev.get("type").and_then(|v| v.as_str()).expect("every event has a type");
        kinds.insert(kind.to_string());
        replayed.accept(&ev);
    }
    for required in ["run_start", "span", "metric", "epoch", "op_stat", "insight", "sys", "run_end"]
    {
        assert!(kinds.contains(required), "manifest must contain a `{required}` event: {kinds:?}");
    }

    // The indexer agrees with the manual replay and finds the content.
    let store = RunStore::index(dir.join("runs")).expect("store indexes");
    let summary = store.get("schema-check").expect("run indexed");
    assert_eq!(summary.malformed, 0, "no line may be rejected");
    assert_eq!(summary.epochs.len(), 2);
    assert_eq!(summary.events, content.lines().count());
    assert!(!summary.insight.is_empty(), "insight samples indexed");
    assert!(!summary.insight_groups().is_empty(), "layer groups recovered");
    assert!(!summary.op_stats.is_empty(), "profiler flame rows indexed");
    assert!(!summary.sys.is_empty(), "system samples indexed");
    assert!(summary.wall_s.is_some(), "run_end recorded");
    assert_eq!(replayed.events, summary.events, "manual replay matches indexer");

    // The dashboard renders from the same summary, with itself as the
    // comparison baseline (self-diff: zero regressions).
    let page = html::render(summary, Some(summary));
    assert!(page.contains("</html>") && page.contains("0 regressed"));

    std::fs::remove_dir_all(&dir).ok();
}
