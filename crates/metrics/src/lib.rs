//! # traffic-metrics
//!
//! The paper's three evaluation metrics — MAE, RMSE, MAPE — with
//! missing-value masking (targets equal to zero are PeMS sensor dropouts
//! and are excluded, following the reference implementations), per-horizon
//! evaluation at the paper's 15/30/60-minute marks, selective evaluation on
//! difficult-interval masks, and relative-degradation computation (Fig 2).

use traffic_tensor::Tensor;

/// The three metrics of the paper, computed over one prediction set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSet {
    /// Mean absolute error.
    pub mae: f32,
    /// Root mean squared error.
    pub rmse: f32,
    /// Mean absolute percentage error, in percent.
    pub mape: f32,
    /// Number of valid (non-masked) entries that contributed.
    pub count: usize,
}

impl MetricSet {
    /// An empty result (no valid entries).
    pub fn empty() -> Self {
        MetricSet { mae: f32::NAN, rmse: f32::NAN, mape: f32::NAN, count: 0 }
    }
}

impl std::fmt::Display for MetricSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAE {:.3}  RMSE {:.3}  MAPE {:.2}%", self.mae, self.rmse, self.mape)
    }
}

/// Computes masked MAE/RMSE/MAPE.
///
/// `pred` and `target` must be identically shaped; entries where
/// `target == 0` are skipped. `extra_mask`, when given, further restricts
/// evaluation to entries where it is `> 0.5` (used for difficult
/// intervals).
///
/// ```
/// use traffic_tensor::Tensor;
/// let pred = Tensor::from_vec(vec![62.0, 55.0], &[2]);
/// let truth = Tensor::from_vec(vec![60.0, 55.0], &[2]);
/// let m = traffic_metrics::evaluate(&pred, &truth, None);
/// assert!((m.mae - 1.0).abs() < 1e-6);
/// ```
pub fn evaluate(pred: &Tensor, target: &Tensor, extra_mask: Option<&Tensor>) -> MetricSet {
    assert_eq!(pred.shape(), target.shape(), "pred/target shape mismatch");
    if let Some(m) = extra_mask {
        assert_eq!(m.shape(), target.shape(), "mask shape mismatch");
    }
    let p = pred.as_slice();
    let t = target.as_slice();
    let mut abs_sum = 0.0f64;
    let mut sq_sum = 0.0f64;
    let mut pct_sum = 0.0f64;
    let mut count = 0usize;
    for i in 0..t.len() {
        if t[i] == 0.0 {
            continue;
        }
        if let Some(m) = extra_mask {
            if m.as_slice()[i] <= 0.5 {
                continue;
            }
        }
        let err = (p[i] - t[i]) as f64;
        abs_sum += err.abs();
        sq_sum += err * err;
        pct_sum += (err / t[i] as f64).abs();
        count += 1;
    }
    if count == 0 {
        return MetricSet::empty();
    }
    MetricSet {
        mae: (abs_sum / count as f64) as f32,
        rmse: (sq_sum / count as f64).sqrt() as f32,
        mape: (pct_sum / count as f64 * 100.0) as f32,
        count,
    }
}

/// Per-horizon evaluation over `[S, T_out, N]` predictions.
///
/// Returns one [`MetricSet`] per requested horizon step (0-based:
/// horizon 2 = 15 min, 5 = 30 min, 11 = 60 min at 5-minute resolution).
pub fn evaluate_horizons(
    pred: &Tensor,
    target: &Tensor,
    horizons: &[usize],
    extra_mask: Option<&Tensor>,
) -> Vec<MetricSet> {
    assert_eq!(pred.rank(), 3, "expected [S, T_out, N]");
    assert_eq!(pred.shape(), target.shape());
    horizons
        .iter()
        .map(|&h| {
            let ph = pred.narrow(1, h, 1);
            let th = target.narrow(1, h, 1);
            let mh = extra_mask.map(|m| m.narrow(1, h, 1));
            evaluate(&ph, &th, mh.as_ref())
        })
        .collect()
}

/// The paper's three reporting horizons at 5-minute resolution
/// (15, 30, 60 minutes), as 0-based step indices.
pub const PAPER_HORIZONS: [usize; 3] = [2, 5, 11];

/// Human-readable labels matching [`PAPER_HORIZONS`].
pub const PAPER_HORIZON_LABELS: [&str; 3] = ["15 min", "30 min", "60 min"];

/// Per-node evaluation over `[S, T_out, N]` predictions: one [`MetricSet`]
/// per sensor (Fig 3 selects its roads from exactly this distribution).
pub fn evaluate_per_node(pred: &Tensor, target: &Tensor) -> Vec<MetricSet> {
    assert_eq!(pred.rank(), 3, "expected [S, T_out, N]");
    assert_eq!(pred.shape(), target.shape());
    let n = pred.shape()[2];
    (0..n)
        .map(|i| {
            let p = pred.narrow(2, i, 1);
            let t = target.narrow(2, i, 1);
            evaluate(&p, &t, None)
        })
        .collect()
}

/// Relative performance degradation in percent (Fig 2, second row):
/// `100 · (difficult − overall) / overall`.
pub fn degradation_pct(overall_mae: f32, difficult_mae: f32) -> f32 {
    assert!(overall_mae > 0.0, "overall MAE must be positive");
    100.0 * (difficult_mae - overall_mae) / overall_mae
}

/// Mean and population standard deviation of repeated runs (the paper
/// repeats each experiment five times and reports mean ± std).
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (f32::NAN, f32::NAN);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let t = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let m = evaluate(&t, &t, None);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn hand_computed_values() {
        let p = Tensor::from_vec(vec![12.0, 18.0], &[2]);
        let t = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let m = evaluate(&p, &t, None);
        assert!((m.mae - 2.0).abs() < 1e-6);
        assert!((m.rmse - 2.0).abs() < 1e-6);
        assert!((m.mape - 15.0).abs() < 1e-4); // (20% + 10%) / 2
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = Tensor::from_vec(vec![1.0, 5.0, 9.0, 2.0], &[4]);
        let t = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0], &[4]);
        let m = evaluate(&p, &t, None);
        assert!(m.rmse >= m.mae);
    }

    #[test]
    fn zero_targets_masked() {
        let p = Tensor::from_vec(vec![100.0, 18.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 20.0], &[2]);
        let m = evaluate(&p, &t, None);
        assert_eq!(m.count, 1);
        assert!((m.mae - 2.0).abs() < 1e-6);
    }

    #[test]
    fn extra_mask_restricts() {
        let p = Tensor::from_vec(vec![11.0, 25.0], &[2]);
        let t = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let mask = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let m = evaluate(&p, &t, Some(&mask));
        assert_eq!(m.count, 1);
        assert!((m.mae - 5.0).abs() < 1e-6);
    }

    #[test]
    fn all_masked_is_empty() {
        let p = Tensor::ones(&[3]);
        let t = Tensor::zeros(&[3]);
        let m = evaluate(&p, &t, None);
        assert_eq!(m.count, 0);
        assert!(m.mae.is_nan());
    }

    #[test]
    fn horizons_slice_correctly() {
        // error grows with horizon: h-step error = h+1
        let s = 2;
        let t_out = 12;
        let n = 1;
        let mut p = Vec::new();
        let mut t = Vec::new();
        for _ in 0..s {
            for h in 0..t_out {
                p.push(10.0 + (h + 1) as f32);
                t.push(10.0);
            }
        }
        let pred = Tensor::from_vec(p, &[s, t_out, n]);
        let targ = Tensor::from_vec(t, &[s, t_out, n]);
        let ms = evaluate_horizons(&pred, &targ, &PAPER_HORIZONS, None);
        assert!((ms[0].mae - 3.0).abs() < 1e-5);
        assert!((ms[1].mae - 6.0).abs() < 1e-5);
        assert!((ms[2].mae - 12.0).abs() < 1e-5);
    }

    #[test]
    fn per_node_isolates_sensors() {
        // node 0 perfect, node 1 off by 2
        let pred = Tensor::from_vec(vec![10.0, 22.0, 10.0, 22.0], &[2, 1, 2]);
        let targ = Tensor::from_vec(vec![10.0, 20.0, 10.0, 20.0], &[2, 1, 2]);
        let per = evaluate_per_node(&pred, &targ);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].mae, 0.0);
        assert!((per[1].mae - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degradation_formula() {
        assert!((degradation_pct(2.0, 4.0) - 100.0).abs() < 1e-6);
        assert!((degradation_pct(4.0, 4.0)).abs() < 1e-6);
        assert!((degradation_pct(2.0, 5.6) - 180.0).abs() < 1e-4);
    }

    #[test]
    fn mean_std_of_repeats() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        let (m, s) = mean_std(&[5.0]);
        assert_eq!(m, 5.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn display_format() {
        let m = MetricSet { mae: 1.234, rmse: 2.345, mape: 5.6, count: 10 };
        assert_eq!(format!("{m}"), "MAE 1.234  RMSE 2.345  MAPE 5.60%");
    }
}
