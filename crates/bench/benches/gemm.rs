//! GEMM / spmm wall-clock benchmark behind `BENCH_gemm.json`.
//!
//! Not a criterion harness: the numbers feed an acceptance gate (see
//! README §Performance), so this binary measures the kernels directly
//! — seed naive vs blocked vs blocked+pool on the batch-1 METR-LA
//! graph-conv shape `[207, 207] · [207, 64]`, and CSR vs dense at 10%
//! density — and writes one machine-readable JSON file at the
//! workspace root.
//!
//! Run with `scripts/bench_gemm.sh`, or directly:
//! `cargo bench --bench gemm` (`BENCH_SMOKE=1` for a fast CI pass).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traffic_tensor::{gemm, pool, CsrMatrix, Tensor};

const M: usize = 207;
const K: usize = 207;
const N: usize = 64;
const SPARSE_DENSITY: f64 = 0.10;

/// Best-of-`reps` seconds per call, each sample averaging `inner`
/// back-to-back calls. Minimum rather than mean: scheduler noise on a
/// shared runner only ever adds time.
fn best_secs(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (reps, inner) = if smoke { (6, 2) } else { (60, 4) };
    pool::warmup();
    let threads = pool::num_threads();
    let mut rng = StdRng::seed_from_u64(42);

    let a: Vec<f32> = (0..M * K).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..K * N).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let flops = 2 * M * K * N;
    let mut out = vec![0.0f32; M * N];

    let naive = best_secs(reps, inner, || {
        out.fill(0.0);
        gemm::matmul_naive(&a, &b, &mut out, M, K, N);
    });
    let blocked = {
        let _cap = pool::ThreadCapGuard::new(1);
        best_secs(reps, inner, || {
            out.fill(0.0);
            gemm::gemm(&a, &b, &mut out, M, K, N);
        })
    };
    let parallel = best_secs(reps, inner, || {
        out.fill(0.0);
        gemm::gemm_parallel(&a, &b, &mut out, M, K, N);
    });

    // CSR vs dense at 10% density, tensor-level (what a layer pays).
    let mut adj = vec![0.0f32; M * K];
    for v in adj.iter_mut() {
        if rng.gen_bool(SPARSE_DENSITY) {
            *v = rng.gen_range(0.1f32..1.0);
        }
    }
    let adj_dense = Tensor::from_vec(adj, &[M, K]);
    let csr = CsrMatrix::from_dense(&adj_dense);
    let x = Tensor::from_vec(b.clone(), &[K, N]);
    let dense_secs = best_secs(reps, inner, || {
        std::hint::black_box(adj_dense.matmul(&x));
    });
    let csr_secs = best_secs(reps, inner, || {
        std::hint::black_box(csr.matmul(&x));
    });

    let gflops = |secs: f64| flops as f64 / secs / 1e9;
    let json = format!(
        concat!(
            "{{\n",
            "  \"shape\": {{\"m\": {m}, \"k\": {k}, \"n\": {n}}},\n",
            "  \"flops_per_call\": {flops},\n",
            "  \"pool_threads\": {threads},\n",
            "  \"smoke\": {smoke},\n",
            "  \"kernels\": {{\n",
            "    \"seed_naive\": {{\"secs\": {naive:.6e}, \"gflops\": {ng:.3}}},\n",
            "    \"blocked_serial\": {{\"secs\": {blocked:.6e}, \"gflops\": {bg:.3}}},\n",
            "    \"blocked_pool\": {{\"secs\": {parallel:.6e}, \"gflops\": {pg:.3}}}\n",
            "  }},\n",
            "  \"speedup_blocked_serial_vs_seed\": {sb:.3},\n",
            "  \"speedup_blocked_pool_vs_seed\": {sp:.3},\n",
            "  \"sparse_10pct\": {{\n",
            "    \"density\": {dens:.4},\n",
            "    \"nnz\": {nnz},\n",
            "    \"dense_secs\": {ds:.6e},\n",
            "    \"csr_secs\": {cs:.6e},\n",
            "    \"csr_speedup_vs_dense\": {cspd:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        m = M,
        k = K,
        n = N,
        flops = flops,
        threads = threads,
        smoke = smoke,
        naive = naive,
        ng = gflops(naive),
        blocked = blocked,
        bg = gflops(blocked),
        parallel = parallel,
        pg = gflops(parallel),
        sb = naive / blocked,
        sp = naive / parallel,
        dens = csr.density(),
        nnz = csr.nnz(),
        ds = dense_secs,
        cs = csr_secs,
        cspd = dense_secs / csr_secs,
    );
    print!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
