//! Table I regenerator: prints the dataset catalog and benchmarks the
//! traffic simulator that stands in for the PeMS downloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traffic_core::render_table1;
use traffic_data::{simulate, SimConfig, Task, DATASETS};

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("table1_datasets");
    println!("\n== Table I: dataset characterisation ==\n{}", render_table1());

    let mut group = c.benchmark_group("table1/simulate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for info in DATASETS.iter().take(3) {
        let cfg = SimConfig::for_dataset(info, 0.05);
        group.bench_with_input(BenchmarkId::from_parameter(info.name), &cfg, |b, cfg| {
            b.iter(|| simulate(cfg));
        });
    }
    // Scaling behaviour in node count.
    for nodes in [10usize, 40, 160] {
        let cfg = SimConfig::new(format!("scale-{nodes}"), Task::Speed, nodes, 4);
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &cfg, |b, cfg| {
            b.iter(|| simulate(cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
