//! The seven-dataset catalog of the paper's Table I, plus the simulation
//! presets that stand in for the real PeMS downloads (DESIGN.md §2).

/// Which quantity a dataset measures (the paper's two tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Speed prediction (mph).
    Speed,
    /// Flow prediction (vehicles / 5 min).
    Flow,
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Speed => write!(f, "speed"),
            Task::Flow => write!(f, "flow"),
        }
    }
}

/// Network topology used when simulating a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Linear freeway corridor (METR-LA, PeMS-BAY, PeMSD7(M)).
    Corridor,
    /// Corridor + downtown grid mix (metropolitan flow districts).
    MetroMix,
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Canonical dataset name.
    pub name: &'static str,
    /// Speed or flow.
    pub task: Task,
    /// Region string as printed in Table I.
    pub region: &'static str,
    /// Start date (as printed in Table I).
    pub start_date: &'static str,
    /// End date.
    pub end_date: &'static str,
    /// Number of days of data.
    pub days: usize,
    /// Number of sensors.
    pub nodes: usize,
    /// Features available in the original release.
    pub features: &'static str,
    /// Whether sensor IDs ship with the dataset.
    pub has_sensor_ids: bool,
    /// Whether the original data covers weekends (PeMSD7(M) does not).
    pub includes_weekends: bool,
    /// Topology preset used by the simulator.
    pub topology: Topology,
}

/// All seven datasets, in the paper's column order.
pub const DATASETS: [DatasetInfo; 7] = [
    DatasetInfo {
        name: "METR-LA",
        task: Task::Speed,
        region: "Los Angeles",
        start_date: "3/1/2012",
        end_date: "6/30/2012",
        days: 122,
        nodes: 207,
        features: "speed",
        has_sensor_ids: true,
        includes_weekends: true,
        topology: Topology::Corridor,
    },
    DatasetInfo {
        name: "PeMS-BAY",
        task: Task::Speed,
        region: "Bay Area",
        start_date: "1/1/2017",
        end_date: "6/30/2017",
        days: 181,
        nodes: 325,
        features: "speed",
        has_sensor_ids: true,
        includes_weekends: true,
        topology: Topology::Corridor,
    },
    DatasetInfo {
        name: "PeMSD7(M)",
        task: Task::Speed,
        region: "Los Angeles",
        start_date: "5/1/2012",
        end_date: "6/30/2012",
        days: 44,
        nodes: 228,
        features: "speed",
        has_sensor_ids: false,
        includes_weekends: false,
        topology: Topology::Corridor,
    },
    DatasetInfo {
        name: "PeMSD3",
        task: Task::Flow,
        region: "North Central",
        start_date: "9/1/2018",
        end_date: "11/30/2018",
        days: 91,
        nodes: 358,
        features: "flow",
        has_sensor_ids: true,
        includes_weekends: true,
        topology: Topology::MetroMix,
    },
    DatasetInfo {
        name: "PeMSD4",
        task: Task::Flow,
        region: "Bay Area",
        start_date: "1/1/2018",
        end_date: "2/28/2018",
        days: 59,
        nodes: 307,
        features: "flow, occupancy, speed",
        has_sensor_ids: false,
        includes_weekends: true,
        topology: Topology::MetroMix,
    },
    DatasetInfo {
        name: "PeMSD7",
        task: Task::Flow,
        region: "Los Angeles",
        start_date: "5/1/2017",
        end_date: "8/31/2017",
        days: 98,
        nodes: 883,
        features: "flow",
        has_sensor_ids: false,
        includes_weekends: true,
        topology: Topology::MetroMix,
    },
    DatasetInfo {
        name: "PeMSD8",
        task: Task::Flow,
        region: "San Bernardino",
        start_date: "7/1/2016",
        end_date: "8/31/2016",
        days: 62,
        nodes: 170,
        features: "flow, occupancy, speed",
        has_sensor_ids: false,
        includes_weekends: true,
        topology: Topology::MetroMix,
    },
];

/// Looks a dataset up by (case-insensitive) name.
pub fn dataset_info(name: &str) -> Option<&'static DatasetInfo> {
    DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Names of the three speed datasets, in paper order.
pub fn speed_datasets() -> Vec<&'static DatasetInfo> {
    DATASETS.iter().filter(|d| d.task == Task::Speed).collect()
}

/// Names of the four flow datasets, in paper order.
pub fn flow_datasets() -> Vec<&'static DatasetInfo> {
    DATASETS.iter().filter(|d| d.task == Task::Flow).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts() {
        assert_eq!(DATASETS.len(), 7);
        assert_eq!(speed_datasets().len(), 3);
        assert_eq!(flow_datasets().len(), 4);
    }

    #[test]
    fn table1_node_counts_match_paper() {
        assert_eq!(dataset_info("METR-LA").unwrap().nodes, 207);
        assert_eq!(dataset_info("PeMS-BAY").unwrap().nodes, 325);
        assert_eq!(dataset_info("PeMSD7(M)").unwrap().nodes, 228);
        assert_eq!(dataset_info("PeMSD3").unwrap().nodes, 358);
        assert_eq!(dataset_info("PeMSD4").unwrap().nodes, 307);
        assert_eq!(dataset_info("PeMSD7").unwrap().nodes, 883);
        assert_eq!(dataset_info("PeMSD8").unwrap().nodes, 170);
    }

    #[test]
    fn lookup_case_insensitive() {
        assert!(dataset_info("metr-la").is_some());
        assert!(dataset_info("nope").is_none());
    }

    #[test]
    fn pemsd7m_weekdays_only() {
        assert!(!dataset_info("PeMSD7(M)").unwrap().includes_weekends);
        assert!(dataset_info("METR-LA").unwrap().includes_weekends);
    }
}
