//! Attention primitives: scaled dot-product and multi-head attention.
//!
//! GMAN applies these over both the node axis (spatial attention) and the
//! time axis (temporal attention); ASTGCN uses learned attention score maps.

use rand::Rng;
use traffic_tensor::{Tape, Var};

use crate::linear::Linear;
use crate::param::ParamStore;

/// Scaled dot-product attention.
///
/// `q: [..., Lq, D]`, `k: [..., Lk, D]`, `v: [..., Lk, Dv]` →
/// `[..., Lq, Dv]`. Leading axes broadcast.
pub fn scaled_dot_attention<'t>(q: Var<'t>, k: Var<'t>, v: Var<'t>) -> Var<'t> {
    let d = *q.shape().last().expect("attention operands need rank >= 2") as f32;
    let scores = q.matmul(&k.t()).mul_scalar(1.0 / d.sqrt());
    let axis = scores.shape().len() - 1;
    scores.softmax(axis).matmul(&v)
}

/// Multi-head attention with learned Q/K/V/output projections.
///
/// Heads are materialised by splitting the projected feature axis; all
/// computation stays batched.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// `d_model` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(d_model.is_multiple_of(heads), "d_model {d_model} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{prefix}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(store, &format!("{prefix}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(store, &format!("{prefix}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(store, &format!("{prefix}.wo"), d_model, d_model, true, rng),
            heads,
            d_model,
        }
    }

    /// Attention where queries attend over keys/values.
    ///
    /// `query: [B, Lq, D]`, `context: [B, Lk, D]` → `[B, Lq, D]`.
    pub fn forward<'t>(&self, tape: &'t Tape, query: Var<'t>, context: Var<'t>) -> Var<'t> {
        let qs = query.shape();
        let ks = context.shape();
        assert_eq!(qs.len(), 3, "MultiHeadAttention expects [B, L, D] inputs");
        let (b, lq, _) = (qs[0], qs[1], qs[2]);
        let lk = ks[1];
        let dh = self.d_model / self.heads;
        // Project, split into heads: [B, L, D] -> [B, L, H, dh] -> [B, H, L, dh]
        let split =
            |x: Var<'t>, l: usize| x.reshape(&[b, l, self.heads, dh]).permute(&[0, 2, 1, 3]);
        let q = split(self.wq.forward(tape, query), lq);
        let k = split(self.wk.forward(tape, context), lk);
        let v = split(self.wv.forward(tape, context), lk);
        let attended = scaled_dot_attention(q, k, v); // [B, H, Lq, dh]
        let merged = attended.permute(&[0, 2, 1, 3]).reshape(&[b, lq, self.d_model]);
        self.wo.forward(tape, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::{Tape, Tensor};

    #[test]
    fn dot_attention_uniform_when_keys_equal() {
        let tape = Tape::new();
        // identical keys -> uniform weights -> output = mean of values
        let q = tape.constant(Tensor::ones(&[1, 1, 2]));
        let k = tape.constant(Tensor::ones(&[1, 3, 2]));
        let v = tape.constant(Tensor::from_vec(vec![0.0, 3.0, 6.0], &[1, 3, 1]));
        let out = scaled_dot_attention(q, k, v).value();
        assert!((out.item() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn dot_attention_prefers_matching_key() {
        let tape = Tape::new();
        let q = tape.constant(Tensor::from_vec(vec![10.0, 0.0], &[1, 1, 2]));
        let k = tape.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[1, 2, 2]));
        let v = tape.constant(Tensor::from_vec(vec![1.0, -1.0], &[1, 2, 1]));
        let out = scaled_dot_attention(q, k, v).value();
        assert!(out.item() > 0.99, "expected near v[0], got {}", out.item());
    }

    #[test]
    fn mha_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "mha", 8, 2, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[3, 5, 8]));
        let ctx = tape.constant(Tensor::ones(&[3, 7, 8]));
        let y = mha.forward(&tape, x, ctx);
        assert_eq!(y.shape(), vec![3, 5, 8]);
        let grads = tape.backward(y.powf(2.0).mean_all());
        store.capture_grads(&tape, &grads);
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }
}
