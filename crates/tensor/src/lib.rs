//! # traffic-tensor
//!
//! A from-scratch dense `f32` tensor library with reverse-mode automatic
//! differentiation, built as the numerical substrate for reproducing
//! *"An Empirical Experiment on Deep Learning Models for Predicting Traffic
//! Data"* (ICDE 2021) in pure Rust.
//!
//! ## Layout
//! - [`Tensor`]: contiguous row-major `f32` storage, NumPy-style
//!   broadcasting, batched matmul, stride-1 dilated conv2d, reductions.
//! - [`pool`] / [`gemm`] / [`sparse`]: the traffic-compute runtime — a
//!   persistent worker pool (`TRAFFIC_THREADS`), a blocked
//!   register-tiled GEMM with intra-matrix parallelism, and CSR sparse
//!   graph operators ([`Propagator`]) used by the graph-conv layers.
//! - [`mem`]: the traffic-mem layer — a size-class buffer pool that
//!   recycles `Vec<f32>` backing stores (`TRAFFIC_MEM_CAP`), making
//!   steady-state training steps allocate ~zero.
//! - [`Tape`] / [`Var`]: define-by-run autograd. Operations on [`Var`]
//!   record backward closures; [`Tape::backward`] runs one reverse sweep.
//! - [`init`]: seeded weight initialisers (uniform/normal/Xavier/Kaiming).
//! - [`gradcheck`]: central-finite-difference gradient verification used
//!   throughout the workspace's test suites.
//!
//! ## Example
//! ```
//! use traffic_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let w = tape.leaf(Tensor::from_vec(vec![0.5, -1.0], &[2, 1]), true);
//! let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
//! let loss = x.matmul(&w).powf(2.0).mean_all();
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).unwrap().shape(), &[2, 1]);
//! ```

pub mod conv;
pub mod fastmath;
pub mod gemm;
pub mod gradcheck;
pub mod inference;
pub mod init;
mod linalg;
pub mod mem;
pub mod pool;
mod reduce;
pub mod shape;
pub mod simd;
pub mod sparse;
mod tape;
mod tensor;

pub use sparse::{CsrMatrix, Propagator};
pub use tape::{ActSaturation, Gradients, Tape, Var};
pub use tensor::Tensor;
