//! Worker-death containment: if the serve worker thread dies, clients
//! must get terminal `ERROR` answers — stranded and future alike —
//! never a hang on a reply channel whose consumer is gone, and the
//! failure must be observable as `FAILED` in `/status`.
//!
//! Lives in its own integration binary: the `serve_panic` fault site is
//! process-global and every engine worker polls it, so it must not
//! share a process with tests that start healthy engines.

use std::time::{Duration, Instant};

use traffic_obs::faults;
use traffic_serve::{Engine, EngineConfig, ServeRequest};

fn request(n: usize, t_in: usize) -> ServeRequest {
    let window = (0..t_in * n).map(|k| 50.0 + (k % 13) as f32).collect();
    ServeRequest { window, tod: 0.5, deadline_ns: u64::MAX }
}

#[test]
fn dead_worker_answers_error_and_reports_failed() {
    faults::reset();
    faults::arm("serve_panic", 1, faults::FaultMode::Soft);
    // The worker signals ready before its first loop iteration, so
    // start() succeeds and the injected panic lands right after.
    let engine = Engine::start(traffic_serve::export_fresh("STGCN", 4, 9), EngineConfig::default())
        .expect("start must succeed; the panic hits the serve loop");

    // Whether this submit races the guard's queue close (drained with
    // ERROR) or lands after it (refused with ERROR at admission), the
    // client gets a terminal answer — the point is it never hangs.
    let resp = engine.predict(request(4, 12));
    assert_eq!(resp.status(), "ERROR", "dead worker must answer ERROR, got {}", resp.status());

    // The guard publishes the death; give the unwind a moment to run.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.status().state != "FAILED" {
        assert!(Instant::now() < deadline, "status never reached FAILED");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Every subsequent request is refused instantly, not queued.
    assert_eq!(engine.predict(request(4, 12)).status(), "ERROR");
    faults::reset();
}
