//! In-memory traffic dataset: a `[T, N]` series over a road network with
//! 5-minute time resolution, mirroring the PeMS aggregation described in
//! the paper's Section III.

use traffic_graph::RoadNetwork;
use traffic_tensor::Tensor;

use crate::catalog::Task;

/// Five-minute steps per day (PeMS aggregation).
pub const STEPS_PER_DAY: usize = 288;

/// A loaded (here: simulated) traffic dataset.
#[derive(Clone)]
pub struct TrafficDataset {
    /// Dataset name (matches the catalog when simulated from a preset).
    pub name: String,
    /// Speed or flow.
    pub task: Task,
    /// The road network the sensors live on.
    pub network: RoadNetwork,
    /// Observations `[T, N]`; missing values are encoded as `0.0`
    /// (PeMS convention).
    pub values: Tensor,
    /// Whether the series covers weekends (PeMSD7(M) does not).
    pub includes_weekends: bool,
}

impl TrafficDataset {
    /// Total number of 5-minute steps.
    pub fn num_steps(&self) -> usize {
        self.values.shape()[0]
    }

    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.values.shape()[1]
    }

    /// Number of whole days.
    pub fn num_days(&self) -> usize {
        self.num_steps() / STEPS_PER_DAY
    }

    /// Normalised time-of-day in `[0, 1)` for every step: the second input
    /// feature fed to every model (paper §V: "time stamp" with min-max
    /// normalisation).
    pub fn time_of_day(&self) -> Tensor {
        let t = self.num_steps();
        Tensor::from_vec(
            (0..t).map(|i| (i % STEPS_PER_DAY) as f32 / STEPS_PER_DAY as f32).collect(),
            &[t],
        )
    }

    /// Day-of-week index (0 = Monday) per step. Weekday-only datasets cycle
    /// through 0..5.
    pub fn day_of_week(&self) -> Vec<u8> {
        let modulus = if self.includes_weekends { 7 } else { 5 };
        (0..self.num_steps()).map(|i| ((i / STEPS_PER_DAY) % modulus) as u8).collect()
    }

    /// Series of one sensor: `[T]`.
    pub fn node_series(&self, node: usize) -> Tensor {
        assert!(node < self.num_nodes(), "node {node} out of range");
        let t = self.num_steps();
        let n = self.num_nodes();
        let data = self.values.as_slice();
        Tensor::from_vec((0..t).map(|i| data[i * n + node]).collect(), &[t])
    }

    /// Fraction of entries that are missing (exact zeros).
    pub fn missing_fraction(&self) -> f32 {
        let total = self.values.len();
        if total == 0 {
            return 0.0;
        }
        let missing = self.values.as_slice().iter().filter(|&&v| v == 0.0).count();
        missing as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_graph::freeway_corridor;

    fn toy() -> TrafficDataset {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        TrafficDataset {
            name: "toy".into(),
            task: Task::Speed,
            network: freeway_corridor(3, 1.0, &mut rng),
            values: Tensor::from_vec(
                (0..(STEPS_PER_DAY * 2 * 3)).map(|i| i as f32).collect(),
                &[STEPS_PER_DAY * 2, 3],
            ),
            includes_weekends: true,
        }
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.num_steps(), 576);
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.num_days(), 2);
    }

    #[test]
    fn time_of_day_wraps() {
        let d = toy();
        let tod = d.time_of_day();
        assert_eq!(tod.at(&[0]), 0.0);
        assert_eq!(tod.at(&[STEPS_PER_DAY]), 0.0);
        assert!(tod.at(&[STEPS_PER_DAY - 1]) < 1.0);
    }

    #[test]
    fn day_of_week_cycles() {
        let mut d = toy();
        let dow = d.day_of_week();
        assert_eq!(dow[0], 0);
        assert_eq!(dow[STEPS_PER_DAY], 1);
        d.includes_weekends = false;
        assert!(d.day_of_week().iter().all(|&w| w < 5));
    }

    #[test]
    fn node_series_extracts_column() {
        let d = toy();
        let s = d.node_series(1);
        assert_eq!(s.at(&[0]), 1.0);
        assert_eq!(s.at(&[1]), 4.0);
    }

    #[test]
    fn missing_fraction_counts_zeros() {
        let mut d = toy();
        assert!(d.missing_fraction() > 0.0); // index 0 is a zero value
        d.values = Tensor::ones(&[4, 3]);
        assert_eq!(d.missing_fraction(), 0.0);
    }
}
