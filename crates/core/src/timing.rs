//! Table III: computation time (training time per epoch, inference time)
//! and parameter counts, measured on the METR-LA dataset.
//!
//! Timings are read back from the `traffic-obs` span registry rather
//! than ad-hoc stopwatches: `trainer::train` opens a `train/epoch` span
//! per epoch and `timed_predict` a `predict` span, so the table is
//! derived from the same records any sink observes.

use std::time::Duration;

use traffic_obs::span::{span_marker, span_stats_local};

use crate::experiment::{eval_split, prepare_experiment, train_model, PreparedExperiment};
use crate::scale::ExperimentScale;
use crate::trainer::timed_predict;

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// Wall-clock training time per epoch.
    pub train_time_per_epoch: Duration,
    /// Wall-clock inference time over the evaluated test split.
    pub inference_time: Duration,
    /// Total scalar parameter count.
    pub params: usize,
}

/// Measures Table III for the given models on METR-LA.
pub fn computation_time(models: &[&str], scale: &ExperimentScale) -> Vec<Table3Row> {
    let exp = prepare_experiment("METR-LA", scale, 42);
    computation_time_on(&exp, models, scale)
}

/// Measures Table III on an already-prepared experiment.
pub fn computation_time_on(
    exp: &PreparedExperiment,
    models: &[&str],
    scale: &ExperimentScale,
) -> Vec<Table3Row> {
    let test = eval_split(&exp.data.test, scale);
    // Spin the worker pool up outside the measured region so thread
    // start-up is not billed to the first model's epoch span.
    traffic_tensor::pool::warmup();
    models
        .iter()
        .filter_map(|&name| {
            // Panic isolation: a crashing model is dropped from the table
            // (a Duration can't carry NaN) and the sweep continues; the
            // failure is still counted and emitted by `run_cell`.
            crate::experiment::run_cell(&format!("table3/{name}"), || {
                let marker = span_marker();
                let (model, report) = train_model(name, exp, scale, 4000);
                let (_pred, stopwatch_inference) =
                    timed_predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
                // Prefer the span registry (this thread's spans only, so
                // concurrent experiments can't pollute the row); the raw
                // measurements only back it up if the ring buffer evicted
                // the records mid-run.
                let epoch_stats = span_stats_local("train/epoch", marker);
                let train_time_per_epoch =
                    if epoch_stats.count > 0 { epoch_stats.mean } else { report.mean_epoch_time };
                let predict_stats = span_stats_local("predict", marker);
                let inference_time =
                    if predict_stats.count > 0 { predict_stats.total } else { stopwatch_inference };
                Table3Row {
                    model: name.to_string(),
                    train_time_per_epoch,
                    inference_time,
                    params: model.num_params(),
                }
            })
            .ok()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_timings_match_trainer_report() {
        // Table III must agree with the trainer's own bookkeeping: the
        // span-registry mean epoch time and the TrainReport mean come
        // from the same guard, so they may differ only by aggregation
        // rounding (well under the ±10% budget).
        let scale = ExperimentScale::smoke();
        let exp = prepare_experiment("METR-LA", &scale, 42);
        let marker = span_marker();
        let (_model, report) = train_model("STGCN", &exp, &scale, 4000);
        let stats = span_stats_local("train/epoch", marker);
        assert_eq!(stats.count, report.epoch_times.len());
        let span_mean = stats.mean.as_secs_f64();
        let report_mean = report.mean_epoch_time.as_secs_f64();
        assert!(
            (span_mean - report_mean).abs() <= 0.1 * report_mean.max(1e-9),
            "span mean {span_mean}s vs report mean {report_mean}s"
        );
    }

    #[test]
    fn timing_smoke() {
        let scale = ExperimentScale::smoke();
        let rows = computation_time(&["STGCN", "Graph-WaveNet"], &scale);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.train_time_per_epoch > Duration::ZERO, "{}", r.model);
            assert!(r.inference_time > Duration::ZERO, "{}", r.model);
            assert!(r.params > 0);
        }
        // Shape check from Table III: STGCN's many-to-one rollout makes its
        // inference slower than Graph-WaveNet's single pass.
        let stgcn = &rows[0];
        let gwn = &rows[1];
        assert!(
            stgcn.inference_time > gwn.inference_time,
            "STGCN {:?} should be slower than GWN {:?} at inference",
            stgcn.inference_time,
            gwn.inference_time
        );
    }
}
