//! The serving engine: a synchronous batch [`Processor`] (the testable
//! core) wrapped by a worker-thread [`Engine`] (the deployable form).
//!
//! ## Why a dedicated worker thread
//!
//! Model parameters are `Rc`-backed (`!Send`), so the live model is
//! owned by exactly one thread for its whole life: built there, served
//! there, swapped there. Everything that crosses the thread boundary —
//! requests, responses, staged snapshots — is plain `Send` data.
//! Parallelism still happens *inside* each forward via the tensor
//! worker pool; the single-consumer design is what makes hot reload an
//! atomic pointer swap instead of a lock hierarchy.
//!
//! ## Degradation ladder
//!
//! `HEALTHY` → breaker trips (consecutive panics / non-finite outputs)
//! → `DEGRADED` (persistence-baseline fallback, periodic probes) →
//! probe succeeds → `HEALTHY`. Queue overload answers `SHED` at
//! admission regardless of model health; neither state ever escalates
//! to a crash.
//!
//! Two rarer failure shapes are also answered, never hung or crashed:
//! a hot reload that changes model geometry (`n`/`t_in`) answers
//! `ERROR` to jobs admitted under the old geometry (re-validated
//! against the live model in [`Processor::process_batch`], since the
//! HTTP layer's check races the swap), and if the worker thread itself
//! ever dies, a scope guard closes the queue and answers `ERROR` to
//! every stranded and future request so clients fail fast instead of
//! blocking forever (`FAILED` in `/status`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use traffic_nn::CheckpointError;
use traffic_obs::{counter, elapsed_ns, emit_with, faults, gauge, Event};
use traffic_tensor::{Tape, Tensor};

use crate::queue::{DeadlineQueue, Job, ServeRequest, ServeResponse};
use crate::snapshot::{self, LoadedModel, ServeSnapshot};
use crate::Breaker;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Queue high-water mark (admission control).
    pub high_water: usize,
    /// Max requests coalesced into one batched forward.
    pub max_batch: usize,
    /// Consecutive bad forwards that trip the breaker.
    pub breaker_threshold: u32,
    /// While open, probe the real model every N-th batch.
    pub probe_every: u64,
    /// Attempts for snapshot-read retry (I/O errors only).
    pub reload_attempts: u32,
    /// Initial reload backoff (doubles per retry).
    pub reload_backoff: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            high_water: 256,
            max_batch: 32,
            breaker_threshold: 3,
            probe_every: 4,
            reload_attempts: 3,
            reload_backoff: Duration::from_millis(10),
        }
    }
}

/// Synchronous batch processor: the model, its breaker, and a reused
/// tape. Single-threaded by construction; the [`Engine`] drives it from
/// the worker, tests drive it directly with a manual clock.
pub struct Processor {
    model: LoadedModel,
    breaker: Breaker,
    tape: Tape,
    batches: u64,
}

impl Processor {
    /// Wraps a validated model.
    pub fn new(model: LoadedModel, cfg: &EngineConfig) -> Self {
        gauge("serve/breaker_open").set(0.0);
        Processor {
            model,
            breaker: Breaker::new(cfg.breaker_threshold, cfg.probe_every),
            tape: Tape::new(),
            batches: 0,
        }
    }

    /// The live model (for `/status`).
    pub fn model(&self) -> &LoadedModel {
        &self.model
    }

    /// Breaker state (for `/status` and tests).
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Swaps in an already-validated model. The old model drops here,
    /// on the owning thread. The breaker resets — new weights get a
    /// clean bill of health until proven otherwise.
    pub fn swap_model(&mut self, model: LoadedModel, cfg: &EngineConfig) {
        self.model = model;
        self.breaker = Breaker::new(cfg.breaker_threshold, cfg.probe_every);
        gauge("serve/breaker_open").set(0.0);
    }

    /// Persistence fallback: the last observed frame repeated across
    /// the horizon. Raw scale in, raw scale out; never touches the
    /// model.
    fn persistence(&self, req: &ServeRequest) -> Vec<f32> {
        let (n, t_in, t_out) = (self.model.snap.n, self.model.snap.t_in, self.model.snap.t_out);
        let last = &req.window[(t_in - 1) * n..t_in * n];
        let mut out = Vec::with_capacity(t_out * n);
        for _ in 0..t_out {
            out.extend_from_slice(last);
        }
        out
    }

    /// Packs jobs into a normalised `[B, t_in, n, 2]` input (z-scored
    /// value + advancing time-of-day channel).
    fn pack(&self, jobs: &[Job]) -> Tensor {
        let snap = &self.model.snap;
        let (n, t_in) = (snap.n, snap.t_in);
        let steps = traffic_models::STEPS_PER_DAY as f32;
        let mut x = Vec::with_capacity(jobs.len() * t_in * n * 2);
        for job in jobs {
            for t in 0..t_in {
                let tod = (job.req.tod + t as f32 / steps).fract();
                for i in 0..n {
                    x.push((job.req.window[t * n + i] - snap.mean) / snap.std);
                    x.push(tod);
                }
            }
        }
        Tensor::from_vec(x, &[jobs.len(), t_in, n, 2])
    }

    /// Runs one batch to completion: every job gets exactly one
    /// response, whatever the model does. Returns the per-batch verdict
    /// (`true` = real model output served).
    pub fn process_batch(&mut self, jobs: Vec<Job>) -> bool {
        // Re-validate geometry against the *live* model: the HTTP layer
        // checked against a /status snapshot, but a hot reload that
        // changes n/t_in can land between admission and this drain. A
        // stale-geometry window would index out of bounds in pack() and
        // persistence() — answer ERROR instead of letting it panic.
        let expected = self.model.snap.t_in * self.model.snap.n;
        let (jobs, stale): (Vec<Job>, Vec<Job>) =
            jobs.into_iter().partition(|j| j.req.window.len() == expected);
        for job in stale {
            counter("serve/geometry_rejects").inc();
            let got = job.req.window.len();
            job.respond(ServeResponse::Error(format!(
                "window has {got} values but the live model wants t_in*n = {expected} \
                 (model geometry changed after admission; re-read /status and retry)"
            )));
        }
        if jobs.is_empty() {
            return false;
        }
        let batch_idx = self.batches;
        self.batches += 1;

        if !self.breaker.allow_real(batch_idx) {
            self.fallback_all(jobs);
            return false;
        }

        let x = self.pack(&jobs);
        let forward =
            catch_unwind(AssertUnwindSafe(|| self.model.forward_batch(&mut self.tape, x)));
        // The serve_nan fault site poisons an otherwise healthy forward,
        // exercising the breaker path without a genuinely broken model.
        let poisoned = faults::fire("serve_nan").is_some();
        let bad = match &forward {
            Ok(out) => poisoned || out.has_non_finite(),
            Err(_) => true,
        };
        if bad {
            counter("serve/bad_forwards").inc();
            if self.breaker.record_failure() {
                counter("serve/breaker_trips").inc();
                gauge("serve/breaker_open").set(1.0);
                emit_with(|| {
                    Event::new("breaker")
                        .with("state", "open")
                        .with("model", self.model.snap.model.clone())
                        .with("consecutive", self.breaker.trips())
                });
            }
            self.fallback_all(jobs);
            return false;
        }

        if self.breaker.record_success() {
            gauge("serve/breaker_open").set(0.0);
            emit_with(|| {
                Event::new("breaker")
                    .with("state", "closed")
                    .with("model", self.model.snap.model.clone())
            });
        }
        let out = forward.expect("bad==false implies Ok");
        let snap = &self.model.snap;
        let per = snap.t_out * snap.n;
        let data = out.as_slice();
        for (b, job) in jobs.into_iter().enumerate() {
            let pred =
                data[b * per..(b + 1) * per].iter().map(|z| z * snap.std + snap.mean).collect();
            counter("serve/ok").inc();
            job.respond(ServeResponse::Ok(pred));
        }
        true
    }

    fn fallback_all(&self, jobs: Vec<Job>) {
        for job in jobs {
            let pred = self.persistence(&job.req);
            counter("serve/degraded").inc();
            job.respond(ServeResponse::Degraded(pred));
        }
    }
}

/// A point-in-time view of the engine for `/status` and `/health`.
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// Model name.
    pub model: String,
    /// Scalar parameter count.
    pub params: usize,
    /// Sensors served.
    pub n: usize,
    /// Input window length.
    pub t_in: usize,
    /// Output horizon.
    pub t_out: usize,
    /// `HEALTHY`, `DEGRADED` (breaker open), or `FAILED` (worker
    /// thread dead — requests get terminal `ERROR` answers).
    pub state: &'static str,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Queue shed threshold.
    pub high_water: usize,
    /// Lifetime breaker trips.
    pub breaker_trips: u64,
    /// Completed hot reloads.
    pub reloads: u64,
    /// Rejected hot reloads (last-good kept every time).
    pub reload_failures: u64,
}

#[derive(Default)]
struct Shared {
    model: Mutex<(String, usize, usize, usize, usize)>,
    degraded: AtomicBool,
    /// Worker thread exited (panic or shutdown); `/status` says
    /// `FAILED` and every request is answered `ERROR` at admission.
    worker_dead: AtomicBool,
    breaker_trips: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
}

enum Control {
    Reload(Box<ServeSnapshot>, mpsc::Sender<Result<(), CheckpointError>>),
    /// Test/chaos hook: the worker sleeps before its next drain,
    /// simulating a stalled consumer so overload paths can be exercised
    /// deterministically.
    Stall(Duration),
    Shutdown,
}

/// The deployable engine: a worker thread owning the model, fed by a
/// [`DeadlineQueue`], controlled via a command channel.
pub struct Engine {
    queue: Arc<DeadlineQueue>,
    ctrl: mpsc::Sender<Control>,
    shared: Arc<Shared>,
    cfg: EngineConfig,
    snapshot_path: Mutex<Option<PathBuf>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Builds the model from `snap` on a fresh worker thread and starts
    /// serving. Fails (without leaking the thread) if the snapshot does
    /// not survive validation.
    pub fn start(snap: ServeSnapshot, cfg: EngineConfig) -> Result<Engine, CheckpointError> {
        let queue = Arc::new(DeadlineQueue::new(cfg.high_water));
        let (ctrl_tx, ctrl_rx) = mpsc::channel::<Control>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), CheckpointError>>();
        let shared = Arc::new(Shared::default());

        let worker = {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("traffic-serve".into())
                .spawn(move || worker_loop(snap, cfg, queue, ctrl_rx, ready_tx, shared))
                .expect("spawn serve worker")
        };
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = worker.join();
                return Err(e);
            }
            Err(_) => {
                let _ = worker.join();
                return Err(CheckpointError::Corrupt("serve worker died during startup".into()));
            }
        }
        Ok(Engine {
            queue,
            ctrl: ctrl_tx,
            shared,
            cfg,
            snapshot_path: Mutex::new(None),
            worker: Some(worker),
        })
    }

    /// [`Engine::start`] from a snapshot file, remembering the path so
    /// [`Engine::reload`] can re-read it later.
    pub fn start_from_path(path: &Path, cfg: EngineConfig) -> Result<Engine, CheckpointError> {
        let snap = snapshot::load_file_with_retry(path, cfg.reload_attempts, cfg.reload_backoff)?;
        let engine = Engine::start(snap, cfg)?;
        *engine.snapshot_path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.to_path_buf());
        Ok(engine)
    }

    /// Submits a request; the response arrives on the returned channel.
    /// Shed/expired requests are answered immediately.
    pub fn submit(&self, req: ServeRequest) -> mpsc::Receiver<ServeResponse> {
        let (tx, rx) = mpsc::channel();
        let now = elapsed_ns();
        self.queue.submit(Job { req, submit_ns: now, reply: tx }, now);
        rx
    }

    /// Submit + block for the response. Always returns: a dead worker
    /// answers `ERROR` (via the queue close + [`WorkerGuard`] drain),
    /// and the `unwrap_or_else` is a final backstop should a job ever
    /// be dropped without a reply.
    pub fn predict(&self, req: ServeRequest) -> ServeResponse {
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| ServeResponse::Error("serve worker dropped the request".into()))
    }

    /// Hot reload with validate-then-swap. The read (with bounded I/O
    /// retry), decode, and CRC checks happen on the *calling* thread;
    /// model rebuild + canary + swap happen on the worker. Any failure
    /// leaves the last-good model serving and emits an `alert` event.
    pub fn reload(&self, path: Option<&Path>) -> Result<(), CheckpointError> {
        let path = match path {
            Some(p) => p.to_path_buf(),
            None => {
                self.snapshot_path.lock().unwrap_or_else(|e| e.into_inner()).clone().ok_or_else(
                    || CheckpointError::Mismatch("no snapshot path configured for reload".into()),
                )?
            }
        };
        let staged = snapshot::load_file_with_retry(
            &path,
            self.cfg.reload_attempts,
            self.cfg.reload_backoff,
        );
        let result = staged.and_then(|snap| {
            let (tx, rx) = mpsc::channel();
            self.ctrl
                .send(Control::Reload(Box::new(snap), tx))
                .map_err(|_| CheckpointError::Corrupt("serve worker is gone".into()))?;
            rx.recv()
                .map_err(|_| CheckpointError::Corrupt("serve worker dropped the reload".into()))?
        });
        match &result {
            Ok(()) => {
                self.shared.reloads.fetch_add(1, Ordering::Relaxed);
                counter("serve/reloads").inc();
                emit_with(|| {
                    Event::new("reload").with("ok", true).with("path", path.display().to_string())
                });
            }
            Err(e) => {
                self.shared.reload_failures.fetch_add(1, Ordering::Relaxed);
                counter("serve/reload_failures").inc();
                let msg = e.to_string();
                emit_with(|| {
                    Event::new("reload")
                        .with("ok", false)
                        .with("path", path.display().to_string())
                        .with("error", msg.clone())
                });
                emit_with(|| {
                    Event::new("alert")
                        .with("rule", "reload_failed")
                        .with("state", "raised")
                        .with("message", format!("hot reload rejected, last-good kept: {msg}"))
                });
            }
        }
        result
    }

    /// Chaos/test hook: stall the worker for `d` before its next drain
    /// so the queue can be driven past its high-water mark on purpose.
    pub fn stall(&self, d: Duration) {
        let _ = self.ctrl.send(Control::Stall(d));
    }

    /// Point-in-time status snapshot.
    pub fn status(&self) -> EngineStatus {
        let (model, params, n, t_in, t_out) =
            self.shared.model.lock().unwrap_or_else(|e| e.into_inner()).clone();
        EngineStatus {
            model,
            params,
            n,
            t_in,
            t_out,
            state: if self.shared.worker_dead.load(Ordering::Relaxed) {
                "FAILED"
            } else if self.shared.degraded.load(Ordering::Relaxed) {
                "DEGRADED"
            } else {
                "HEALTHY"
            },
            queue_depth: self.queue.depth(),
            high_water: self.queue.high_water(),
            breaker_trips: self.shared.breaker_trips.load(Ordering::Relaxed),
            reloads: self.shared.reloads.load(Ordering::Relaxed),
            reload_failures: self.shared.reload_failures.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        let _ = self.ctrl.send(Control::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn publish(shared: &Shared, proc_: &Processor) {
    let snap = &proc_.model().snap;
    *shared.model.lock().unwrap_or_else(|e| e.into_inner()) =
        (snap.model.clone(), proc_.model().num_params(), snap.n, snap.t_in, snap.t_out);
    shared.degraded.store(proc_.breaker().is_open(), Ordering::Relaxed);
    shared.breaker_trips.store(proc_.breaker().trips(), Ordering::Relaxed);
}

/// Scope guard armed for the whole worker lifetime: however the worker
/// exits — clean shutdown, a panic that escapes `catch_unwind`, or the
/// injected `serve_panic` fault — it closes the queue and answers every
/// stranded job, so no client ever blocks on a reply channel whose
/// consumer is gone. Runs during unwind too (`Drop`), which is the
/// whole point.
struct WorkerGuard {
    queue: Arc<DeadlineQueue>,
    shared: Arc<Shared>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.shared.worker_dead.store(true, Ordering::SeqCst);
        let stranded = self.queue.close_and_drain();
        let died = std::thread::panicking();
        if died || !stranded.is_empty() {
            counter("serve/worker_deaths").inc();
            let count = stranded.len();
            emit_with(|| {
                Event::new("alert").with("rule", "serve_worker_died").with("state", "raised").with(
                    "message",
                    format!(
                        "serve worker exited{}; {count} queued request(s) answered ERROR",
                        if died { " via panic" } else { "" }
                    ),
                )
            });
        }
        for job in stranded {
            counter("serve/worker_down_rejects").inc();
            job.respond(ServeResponse::Error("serve worker is down".into()));
        }
    }
}

fn worker_loop(
    snap: ServeSnapshot,
    cfg: EngineConfig,
    queue: Arc<DeadlineQueue>,
    ctrl: mpsc::Receiver<Control>,
    ready: mpsc::Sender<Result<(), CheckpointError>>,
    shared: Arc<Shared>,
) {
    let _guard = WorkerGuard { queue: Arc::clone(&queue), shared: Arc::clone(&shared) };
    let mut proc_ = match snap.instantiate() {
        Ok(model) => Processor::new(model, &cfg),
        Err(e) => {
            let _ = ready.send(Err(e));
            return;
        }
    };
    publish(&shared, &proc_);
    let _ = ready.send(Ok(()));

    loop {
        // Chaos hook: kill the worker outside every catch_unwind, so
        // the WorkerGuard's strand-no-client promise stays testable.
        if faults::fire("serve_panic").is_some() {
            panic!("injected serve worker panic (serve_panic)");
        }
        // Drain control first so a reload never waits behind a backlog.
        loop {
            match ctrl.try_recv() {
                Ok(Control::Reload(staged, ack)) => {
                    let verdict = staged.instantiate().map(|model| {
                        proc_.swap_model(model, &cfg);
                    });
                    publish(&shared, &proc_);
                    let _ = ack.send(verdict);
                }
                Ok(Control::Stall(d)) => std::thread::sleep(d),
                Ok(Control::Shutdown) => {
                    // Answer what's left so no client hangs on shutdown.
                    loop {
                        let rest = queue.pop_batch(elapsed_ns(), cfg.max_batch, None);
                        if rest.is_empty() {
                            break;
                        }
                        proc_.process_batch(rest);
                    }
                    return;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }
        let jobs = queue.pop_batch(elapsed_ns(), cfg.max_batch, Some(Duration::from_millis(5)));
        if !jobs.is_empty() {
            proc_.process_batch(jobs);
            publish(&shared, &proc_);
        }
    }
}
