#!/usr/bin/env bash
# Kill-and-resume smoke test for the fault-tolerance layer.
#
# 1. Starts a checkpointing training run with a hard abort injected at
#    batch 20 (mid-epoch 3 of 4) via the TRAFFIC_FAULTS env hook — the
#    process dies with SIGABRT, exactly like a crash or OOM kill.
# 2. Re-runs the same command without the fault: it must resume from the
#    last epoch checkpoint and complete.
# 3. Runs an uninterrupted reference with a separate checkpoint path.
# 4. Asserts the resumed run's per-epoch losses are bit-identical to the
#    reference (the example prints f32 bit patterns as `LOSSES <hex>`).
#
# Usage: scripts/resume_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/resume_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

run() { cargo run --release -q --example resume_train -- --checkpoint "$1"; }

echo "[resume_smoke] 1/3 interrupted run (hard abort at batch 20)…"
if TRAFFIC_FAULTS="abort@20:hard" run "$WORK/ckpt.tnn2" >"$WORK/killed.log" 2>&1; then
  echo "FAIL: the fault-injected run exited cleanly (no abort fired)"
  cat "$WORK/killed.log"
  exit 1
fi
[[ -f "$WORK/ckpt.tnn2" ]] || { echo "FAIL: no checkpoint written before the abort"; exit 1; }

echo "[resume_smoke] 2/3 resumed run…"
run "$WORK/ckpt.tnn2" | tee "$WORK/resumed.log"
grep -q "^resumed from" "$WORK/resumed.log" || {
  echo "FAIL: second run did not resume from the checkpoint"
  exit 1
}

echo "[resume_smoke] 3/3 uninterrupted reference run…"
run "$WORK/ref.tnn2" | tee "$WORK/reference.log"

resumed=$(grep '^LOSSES ' "$WORK/resumed.log")
reference=$(grep '^LOSSES ' "$WORK/reference.log")
if [[ "$resumed" != "$reference" ]]; then
  echo "FAIL: resumed losses differ from the uninterrupted run"
  echo "  resumed:   $resumed"
  echo "  reference: $reference"
  exit 1
fi
echo "[resume_smoke] OK: resume is bit-identical ($resumed)"
