//! Cross-run analytics store: indexes the JSONL manifests under
//! `reports/runs/` into queryable [`RunSummary`] values and diffs two
//! runs metric-by-metric (the `insight` CLI and the HTML dashboard are
//! both built on this module).
//!
//! A summary is a lossy projection of a manifest: run header and
//! wall-clock, the per-epoch loss curve, the end-of-run metrics
//! snapshot, the insight/system time series, op stats, and blame
//! events. Unknown event kinds are merely counted, so the store stays
//! forward-compatible with events later PRs add.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};

/// One end-of-run metric from the manifest summary section.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(f64),
    /// Last-write-wins gauge value.
    Gauge(f64),
    /// Histogram summary (count/mean/min/max plus quantiles).
    Histogram {
        /// Sample count.
        count: f64,
        /// Arithmetic mean.
        mean: f64,
        /// Smallest finite sample.
        min: f64,
        /// Largest finite sample.
        max: f64,
        /// Median.
        p50: f64,
        /// 90th percentile.
        p90: f64,
        /// 99th percentile.
        p99: f64,
    },
}

/// One `epoch` event.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPoint {
    /// Model name.
    pub model: String,
    /// Epoch index.
    pub epoch: u64,
    /// Mean training loss.
    pub loss: f64,
    /// Validation loss, when early stopping ran.
    pub val_loss: Option<f64>,
    /// Epoch wall-clock seconds.
    pub epoch_s: Option<f64>,
    /// Training throughput.
    pub samples_per_sec: Option<f64>,
}

/// One per-parameter-group `insight` sample.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightPoint {
    /// Global step the sample was taken at.
    pub step: u64,
    /// Parameter-group (layer) name.
    pub group: String,
    /// Group gradient L2 norm (NaN when the manifest recorded `null`).
    pub grad_norm: f64,
    /// Update/weight ratio for the step.
    pub update_ratio: f64,
    /// Group weight L2 norm.
    pub weight_norm: f64,
}

/// One activation-saturation `insight` sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationPoint {
    /// Global step.
    pub step: u64,
    /// Activation op (`tanh`, `sigmoid`, …).
    pub op: String,
    /// Saturated fraction in `[0, 1]`.
    pub fraction: f64,
}

/// One `sys` event from the system sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SysPoint {
    /// Manifest timestamp (ms since the telemetry clock started).
    pub ts_ms: f64,
    /// Resident set size in bytes.
    pub rss_bytes: f64,
    /// CPU utilization in cores.
    pub cpu_util: f64,
    /// Compute-pool queue depth at sample time.
    pub queue_depth: f64,
    /// Mem-pool hit rate in `[0, 1]`.
    pub pool_hit_rate: f64,
}

/// One `op_stat` flame-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStatRow {
    /// `category/name` of the op.
    pub op: String,
    /// Invocations.
    pub count: f64,
    /// Total inclusive milliseconds.
    pub total_ms: f64,
    /// Self milliseconds.
    pub self_ms: f64,
}

/// One `blame` event (divergence supervisor / skipped-step capture).
#[derive(Debug, Clone, PartialEq)]
pub struct BlamePoint {
    /// Why blame was captured (`non_finite_grad`, `exploding`, …).
    pub reason: String,
    /// Epoch of the capture.
    pub epoch: u64,
    /// Global step of the capture.
    pub step: u64,
    /// Rank in the blame ordering (0 = prime suspect).
    pub rank: u64,
    /// Parameter group named by this entry.
    pub group: String,
    /// Grad-norm spike factor vs the group's rolling median.
    pub spike: f64,
    /// Whether the group's gradient norm was NaN/∞.
    pub non_finite: bool,
}

/// One watchdog `alert` event (raised or resolved edge).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertPoint {
    /// Manifest timestamp (ms since the telemetry clock started).
    pub ts_ms: f64,
    /// Watchdog rule name (`step_stall`, `rss_near_cap`, …).
    pub rule: String,
    /// `raised` or `resolved`.
    pub state: String,
    /// Human-readable description (raised edges only).
    pub message: String,
    /// Observed value at the edge.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

/// Queryable summary of one run manifest.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Run name (manifest file stem).
    pub name: String,
    /// Manifest path.
    pub path: PathBuf,
    /// Git commit from the `run_start` header.
    pub git: String,
    /// Thread configuration from the header.
    pub threads: u64,
    /// Run wall-clock seconds (`None` when the run never ended —
    /// crashed or still in flight).
    pub wall_s: Option<f64>,
    /// Total well-formed events.
    pub events: usize,
    /// Lines that failed JSON parsing (a crashed writer's torn tail).
    pub malformed: usize,
    /// Events per kind.
    pub event_counts: BTreeMap<String, usize>,
    /// Per-epoch loss curve, in emission order.
    pub epochs: Vec<EpochPoint>,
    /// End-of-run metrics by name.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Per-group training-health samples.
    pub insight: Vec<InsightPoint>,
    /// Activation-saturation samples.
    pub saturation: Vec<SaturationPoint>,
    /// System time series.
    pub sys: Vec<SysPoint>,
    /// Flame-table rows.
    pub op_stats: Vec<OpStatRow>,
    /// Blame entries.
    pub blame: Vec<BlamePoint>,
    /// Watchdog alert edges, in emission order.
    pub alerts: Vec<AlertPoint>,
}

fn num(ev: &Json, key: &str) -> Option<f64> {
    ev.get(key).and_then(Json::as_f64)
}

fn num_or_nan(ev: &Json, key: &str) -> f64 {
    // Non-finite field values encode as JSON `null`; read them back as NaN.
    match ev.get(key) {
        Some(Json::Num(x)) => *x,
        _ => f64::NAN,
    }
}

fn string(ev: &Json, key: &str) -> String {
    ev.get(key).and_then(Json::as_str).unwrap_or_default().to_string()
}

impl RunSummary {
    /// Parses one manifest into a summary. Unreadable files error;
    /// unparseable *lines* are tolerated and counted in
    /// [`RunSummary::malformed`] (a killed run tears its last line).
    pub fn load(path: impl AsRef<Path>) -> io::Result<RunSummary> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)?;
        let mut run = RunSummary {
            name: path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default(),
            path: path.to_path_buf(),
            ..RunSummary::default()
        };
        for line in text.lines() {
            let Ok(ev) = json::parse(line) else {
                run.malformed += 1;
                continue;
            };
            run.accept(&ev);
        }
        Ok(run)
    }

    /// Folds one parsed event into the summary. Public so round-trip
    /// tests can feed events straight from an in-process sink.
    pub fn accept(&mut self, ev: &Json) {
        let kind = string(ev, "type");
        if kind.is_empty() {
            self.malformed += 1;
            return;
        }
        self.events += 1;
        *self.event_counts.entry(kind.clone()).or_insert(0) += 1;
        match kind.as_str() {
            "run_start" => {
                if self.name.is_empty() {
                    self.name = string(ev, "run");
                }
                self.git = string(ev, "git");
                self.threads = num(ev, "threads").unwrap_or(0.0) as u64;
            }
            "run_end" => self.wall_s = num(ev, "wall_s"),
            "epoch" => self.epochs.push(EpochPoint {
                model: string(ev, "model"),
                epoch: num(ev, "epoch").unwrap_or(0.0) as u64,
                loss: num_or_nan(ev, "loss"),
                val_loss: num(ev, "val_loss"),
                epoch_s: num(ev, "epoch_s"),
                samples_per_sec: num(ev, "samples_per_sec"),
            }),
            "metric" => {
                let name = string(ev, "metric");
                let value = match ev.get("kind").and_then(Json::as_str) {
                    Some("counter") => MetricValue::Counter(num_or_nan(ev, "value")),
                    Some("gauge") => MetricValue::Gauge(num_or_nan(ev, "value")),
                    Some("histogram") => MetricValue::Histogram {
                        count: num_or_nan(ev, "count"),
                        mean: num_or_nan(ev, "mean"),
                        min: num_or_nan(ev, "min"),
                        max: num_or_nan(ev, "max"),
                        p50: num_or_nan(ev, "p50"),
                        p90: num_or_nan(ev, "p90"),
                        p99: num_or_nan(ev, "p99"),
                    },
                    _ => return,
                };
                self.metrics.insert(name, value);
            }
            "insight" => {
                let step = num(ev, "step").unwrap_or(0.0) as u64;
                if let Some(Json::Str(op)) = ev.get("op") {
                    self.saturation.push(SaturationPoint {
                        step,
                        op: op.clone(),
                        fraction: num_or_nan(ev, "saturation"),
                    });
                } else {
                    self.insight.push(InsightPoint {
                        step,
                        group: string(ev, "group"),
                        grad_norm: num_or_nan(ev, "grad_norm"),
                        update_ratio: num_or_nan(ev, "update_ratio"),
                        weight_norm: num_or_nan(ev, "weight_norm"),
                    });
                }
            }
            "sys" => self.sys.push(SysPoint {
                ts_ms: num(ev, "ts_ms").unwrap_or(0.0),
                rss_bytes: num_or_nan(ev, "rss_bytes"),
                cpu_util: num_or_nan(ev, "cpu_util"),
                queue_depth: num_or_nan(ev, "queue_depth"),
                pool_hit_rate: num_or_nan(ev, "pool_hit_rate"),
            }),
            "op_stat" => self.op_stats.push(OpStatRow {
                op: string(ev, "op"),
                count: num_or_nan(ev, "count"),
                total_ms: num_or_nan(ev, "total_ms"),
                self_ms: num_or_nan(ev, "self_ms"),
            }),
            "blame" => self.blame.push(BlamePoint {
                reason: string(ev, "reason"),
                epoch: num(ev, "epoch").unwrap_or(0.0) as u64,
                step: num(ev, "step").unwrap_or(0.0) as u64,
                rank: num(ev, "rank").unwrap_or(0.0) as u64,
                group: string(ev, "group"),
                spike: num_or_nan(ev, "spike"),
                non_finite: matches!(ev.get("non_finite"), Some(Json::Bool(true))),
            }),
            "alert" => self.alerts.push(AlertPoint {
                ts_ms: num(ev, "ts_ms").unwrap_or(0.0),
                rule: string(ev, "rule"),
                state: string(ev, "state"),
                message: string(ev, "message"),
                value: num_or_nan(ev, "value"),
                threshold: num_or_nan(ev, "threshold"),
            }),
            _ => {} // counted above; spans etc. need no projection
        }
    }

    /// Distinct model names in epoch order of first appearance.
    pub fn models(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.epochs {
            if !out.contains(&e.model.as_str()) {
                out.push(&e.model);
            }
        }
        out
    }

    /// Distinct insight parameter groups in first-seen order.
    pub fn insight_groups(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.insight {
            if !out.contains(&p.group.as_str()) {
                out.push(&p.group);
            }
        }
        out
    }

    /// Flattens the summary into comparable scalar leaves (the diff
    /// input): final losses per model, wall-clock, and every metric
    /// (histograms contribute `mean`/`p50`/`p99`/`count` leaves).
    pub fn comparable(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for model in self.models() {
            if let Some(e) = self.epochs.iter().rev().find(|e| e.model == model) {
                out.insert(format!("loss/{model}/final"), e.loss);
                if let Some(vl) = e.val_loss {
                    out.insert(format!("val_loss/{model}/final"), vl);
                }
            }
        }
        if let Some(w) = self.wall_s {
            out.insert("wall_s".to_string(), w);
        }
        for (name, m) in &self.metrics {
            match m {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.insert(name.clone(), *v);
                }
                MetricValue::Histogram { count, mean, p50, p99, .. } => {
                    out.insert(format!("{name}/count"), *count);
                    out.insert(format!("{name}/mean"), *mean);
                    out.insert(format!("{name}/p50"), *p50);
                    out.insert(format!("{name}/p99"), *p99);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// An indexed directory of run manifests.
pub struct RunStore {
    dir: PathBuf,
    runs: Vec<RunSummary>,
}

impl RunStore {
    /// Indexes every `*.jsonl` under `dir`, newest first (by file
    /// mtime, name as tiebreak). A missing directory is an empty store.
    pub fn index(dir: impl Into<PathBuf>) -> io::Result<RunStore> {
        let dir = dir.into();
        let mut entries: Vec<(std::time::SystemTime, String, PathBuf)> = Vec::new();
        match fs::read_dir(&dir) {
            Ok(rd) => {
                for entry in rd {
                    let entry = entry?;
                    let path = entry.path();
                    if path.extension().is_none_or(|e| e != "jsonl") {
                        continue;
                    }
                    let mtime = entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                    let name = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    entries.push((mtime, name, path));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        entries.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut runs = Vec::with_capacity(entries.len());
        for (_, _, path) in &entries {
            runs.push(RunSummary::load(path)?);
        }
        Ok(RunStore { dir, runs })
    }

    /// Indexed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All runs, newest first.
    pub fn runs(&self) -> &[RunSummary] {
        &self.runs
    }

    /// Looks a run up by name (manifest stem).
    pub fn get(&self, name: &str) -> Option<&RunSummary> {
        self.runs.iter().find(|r| r.name == name)
    }
}

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

/// Which way a comparable leaf should move to count as an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (losses, times, failure counts, memory).
    LowerIsBetter,
    /// Larger is better (throughput, hit rates).
    HigherIsBetter,
    /// No quality ordering (plain volume counters).
    Neutral,
}

/// Classifies a comparable-leaf key by name.
pub fn direction(key: &str) -> Direction {
    const HIGHER: &[&str] = &["samples_per_sec", "hit_rate", "gflops"];
    if HIGHER.iter().any(|p| key.contains(p)) {
        return Direction::HigherIsBetter;
    }
    // Volume counters carry no quality ordering — a longer run is not a
    // worse run. Checked before the lower-is-better patterns so e.g.
    // `train.batch_s/count` stays neutral while `…/p99` is gated.
    const NEUTRAL: &[&str] = &["/count", "batches", "checkpoints", "resumes", "pool_hits"];
    if NEUTRAL.iter().any(|p| key.contains(p)) {
        return Direction::Neutral;
    }
    const LOWER: &[&str] = &[
        "loss",
        "_s/",
        "wall_s",
        "_ms",
        "skipped",
        "rollback",
        "failures",
        "nonfinite",
        "rss",
        "queue",
        "misses",
        "bytes",
        "giveup",
    ];
    if LOWER.iter().any(|p| key.contains(p)) || key.ends_with("_s") {
        return Direction::LowerIsBetter;
    }
    Direction::Neutral
}

/// One compared leaf.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Leaf key (see [`RunSummary::comparable`]).
    pub key: String,
    /// Baseline value (`None` when the leaf is new in the candidate).
    pub base: Option<f64>,
    /// Candidate value (`None` when the leaf disappeared).
    pub cand: Option<f64>,
    /// Relative change `(cand − base) / max(|base|, ε)`, 0 when either
    /// side is missing or non-finite.
    pub rel: f64,
    /// Leaf direction.
    pub direction: Direction,
    /// True when the leaf moved in the bad direction beyond tolerance.
    pub regressed: bool,
}

/// Result of diffing a candidate run against a baseline.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// Baseline run name.
    pub base: String,
    /// Candidate run name.
    pub cand: String,
    /// Every leaf present in either run, sorted by key.
    pub entries: Vec<DiffEntry>,
    /// Leaves whose values differ at all (exact inequality).
    pub changed: usize,
    /// Leaves that regressed beyond tolerance.
    pub regressions: usize,
}

/// Diffs two runs with relative tolerance `tol` (e.g. `0.05` = 5%).
/// Identical manifests produce `changed == 0` and `regressions == 0`.
pub fn diff(base: &RunSummary, cand: &RunSummary, tol: f64) -> RunDiff {
    let b = base.comparable();
    let c = cand.comparable();
    let mut keys: Vec<&String> = b.keys().chain(c.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut entries = Vec::with_capacity(keys.len());
    let mut changed = 0usize;
    let mut regressions = 0usize;
    for key in keys {
        let bv = b.get(key).copied();
        let cv = c.get(key).copied();
        let dir = direction(key);
        let rel = match (bv, cv) {
            (Some(bv), Some(cv)) if bv.is_finite() && cv.is_finite() => {
                (cv - bv) / bv.abs().max(1e-12)
            }
            _ => 0.0,
        };
        let differs = match (bv, cv) {
            (Some(bv), Some(cv)) => bv.to_bits() != cv.to_bits() && !(bv.is_nan() && cv.is_nan()),
            (None, None) => false,
            _ => true,
        };
        let regressed = match dir {
            Direction::Neutral => false,
            Direction::LowerIsBetter => rel > tol,
            Direction::HigherIsBetter => rel < -tol,
        };
        changed += differs as usize;
        regressions += regressed as usize;
        entries.push(DiffEntry {
            key: key.clone(),
            base: bv,
            cand: cv,
            rel,
            direction: dir,
            regressed,
        });
    }
    RunDiff { base: base.name.clone(), cand: cand.name.clone(), entries, changed, regressions }
}

impl RunDiff {
    /// Plain-text table of the diff: regressions first, then the
    /// largest movers; unchanged leaves are summarised, not listed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "diff {} -> {}: {} leaves, {} changed, {} regressed\n",
            self.base,
            self.cand,
            self.entries.len(),
            self.changed,
            self.regressions
        ));
        let mut shown: Vec<&DiffEntry> = self
            .entries
            .iter()
            .filter(|e| e.regressed || e.rel != 0.0 || e.base.is_none() || e.cand.is_none())
            .collect();
        shown.sort_by(|a, b| {
            b.regressed
                .cmp(&a.regressed)
                .then(b.rel.abs().partial_cmp(&a.rel.abs()).unwrap_or(std::cmp::Ordering::Equal))
        });
        for e in shown.iter().take(40) {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.6}"),
                None => "-".to_string(),
            };
            let mark = if e.regressed { " REGRESSED" } else { "" };
            out.push_str(&format!(
                "  {:<40} {:>14} -> {:>14}  ({:+.2}%){}\n",
                e.key,
                fmt(e.base),
                fmt(e.cand),
                e.rel * 100.0,
                mark
            ));
        }
        if shown.is_empty() {
            out.push_str("  (no differences)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn feed(run: &mut RunSummary, ev: Event) {
        run.accept(&json::parse(&ev.to_json()).expect("event encodes as valid JSON"));
    }

    fn sample_run(name: &str, loss: f64) -> RunSummary {
        let mut run = RunSummary::default();
        feed(
            &mut run,
            Event::new("run_start").with("run", name).with("git", "abc").with("threads", 4u64),
        );
        feed(
            &mut run,
            Event::new("epoch").with("model", "STGCN").with("epoch", 0u64).with("loss", loss),
        );
        feed(
            &mut run,
            Event::new("metric")
                .with("metric", "train.batch_s")
                .with("kind", "histogram")
                .with("count", 10u64)
                .with("mean", 0.02)
                .with("min", 0.01)
                .with("max", 0.04)
                .with("p50", 0.02)
                .with("p90", 0.03)
                .with("p99", 0.04),
        );
        feed(&mut run, Event::new("run_end").with("run", name).with("wall_s", 1.5));
        run.name = name.to_string();
        run
    }

    #[test]
    fn accept_projects_all_kinds() {
        let mut run = sample_run("a", 0.5);
        feed(
            &mut run,
            Event::new("insight")
                .with("step", 10u64)
                .with("group", "block0.t1")
                .with("grad_norm", 1.25)
                .with("update_ratio", 1e-3)
                .with("weight_norm", 4.0),
        );
        feed(
            &mut run,
            Event::new("insight").with("step", 10u64).with("op", "tanh").with("saturation", 0.125),
        );
        feed(
            &mut run,
            Event::new("sys")
                .with("rss_bytes", 1_000_000u64)
                .with("cpu_util", 1.5)
                .with("queue_depth", 2.0)
                .with("pool_hit_rate", 0.9),
        );
        feed(
            &mut run,
            Event::new("blame")
                .with("reason", "non_finite_grad")
                .with("group", "block0.t1")
                .with("rank", 0u64)
                .with("non_finite", true),
        );
        feed(
            &mut run,
            Event::new("alert")
                .with("rule", "step_stall")
                .with("state", "raised")
                .with("message", "no training-step progress for 45.0s (limit 30s)")
                .with("value", 45.0)
                .with("threshold", 30.0),
        );
        assert_eq!(run.epochs.len(), 1);
        assert_eq!(run.insight.len(), 1);
        assert_eq!(run.insight[0].group, "block0.t1");
        assert_eq!(run.saturation.len(), 1);
        assert_eq!(run.sys.len(), 1);
        assert_eq!(run.blame.len(), 1);
        assert!(run.blame[0].non_finite);
        assert_eq!(run.alerts.len(), 1);
        assert_eq!(run.alerts[0].rule, "step_stall");
        assert_eq!(run.alerts[0].state, "raised");
        assert_eq!(run.alerts[0].value, 45.0);
        assert_eq!(run.wall_s, Some(1.5));
        assert_eq!(run.threads, 4);
        assert_eq!(run.malformed, 0);
        assert!(run.metrics.contains_key("train.batch_s"));
        assert_eq!(run.insight_groups(), vec!["block0.t1"]);
    }

    #[test]
    fn diff_of_identical_runs_is_zero() {
        let a = sample_run("a", 0.5);
        let b = sample_run("b", 0.5);
        let d = diff(&a, &b, 0.05);
        assert_eq!(d.changed, 0, "identical runs must report zero deltas: {}", d.render());
        assert_eq!(d.regressions, 0);
    }

    #[test]
    fn diff_flags_loss_regression() {
        let a = sample_run("a", 0.5);
        let b = sample_run("b", 0.7);
        let d = diff(&a, &b, 0.05);
        assert!(d.regressions >= 1, "{}", d.render());
        assert!(d.entries.iter().any(|e| e.key == "loss/STGCN/final" && e.regressed));
        // improvement direction must not regress
        let d = diff(&b, &a, 0.05);
        assert!(!d.entries.iter().any(|e| e.key == "loss/STGCN/final" && e.regressed));
    }

    #[test]
    fn direction_heuristics() {
        assert_eq!(direction("loss/STGCN/final"), Direction::LowerIsBetter);
        assert_eq!(direction("train.batch_s/p99"), Direction::LowerIsBetter);
        assert_eq!(direction("train.batch_s/count"), Direction::Neutral);
        assert_eq!(direction("train.samples_per_sec/p50"), Direction::HigherIsBetter);
        assert_eq!(direction("mem/pool_hit_rate"), Direction::HigherIsBetter);
        assert_eq!(direction("train/skipped_steps"), Direction::LowerIsBetter);
        assert_eq!(direction("wall_s"), Direction::LowerIsBetter);
        assert_eq!(direction("train.batches"), Direction::Neutral);
    }

    #[test]
    fn store_indexes_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join("traffic_obs_store_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ev = Event::new("run_start").with("run", "r1").with("git", "x").with("threads", 1u64);
        fs::write(dir.join("r1.jsonl"), format!("{}\n{{\"type\":\"run_end\",\"wa", ev.to_json()))
            .unwrap();
        let store = RunStore::index(&dir).unwrap();
        assert_eq!(store.runs().len(), 1);
        let r = store.get("r1").expect("indexed by stem");
        assert_eq!(r.events, 1);
        assert_eq!(r.malformed, 1);
        assert_eq!(r.wall_s, None);
        // a missing directory indexes as empty, not an error
        let empty = RunStore::index(dir.join("nope")).unwrap();
        assert!(empty.runs().is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
