//! Run-to-run determinism of training:
//! - thread counts: the compute pool splits only output ranges (never
//!   the reduction axis), so `TRAFFIC_THREADS=1` vs `TRAFFIC_THREADS=8`
//!   must produce bit-identical losses (exercised via the equivalent
//!   scoped [`pool::ThreadCapGuard`], which runs both in one process);
//! - buffer recycling: the traffic-mem pool only changes where output
//!   buffers come from, never what is written, so `TRAFFIC_MEM_CAP=0`
//!   (pool off) vs the default (pool on) must also be bit-identical
//!   (exercised via [`mem::set_mem_cap`]);
//! - SIMD dispatch: lane-wise AVX2 kernels are bit-identical
//!   transliterations of their scalar fallbacks, so `TRAFFIC_SIMD=0`
//!   vs default must be bit-identical (exercised via
//!   [`simd::set_force_scalar`]). Horizontal reductions are the one
//!   documented exception: `TRAFFIC_SIMD_REDUCE=1` changes summation
//!   association order (different low-order bits allowed), but each
//!   mode must still be run-to-run deterministic — both are pinned
//!   here;
//! - the experiment scheduler: `TRAFFIC_JOBS=4` runs sweep cells
//!   concurrently on partitioned core groups, but every cell seeds its
//!   own RNGs and results are collected in submission order, so the
//!   Fig-1/Fig-2 rows must be bit-identical to the `TRAFFIC_JOBS=1`
//!   legacy serial path — including a cell killed by an injected fault
//!   (`abort` site scoped to one cell), which must render the same
//!   FAILED row in both modes.

use traffic_suite::core::{
    difficult_interval_experiment, model_comparison, set_jobs_override, train, ExperimentScale,
    Fig1Row, Fig2Row, TrainConfig,
};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::tensor::{mem, pool, simd};

/// Both tests flip process-global knobs (thread cap, mem cap); they
/// serialise on one lock so neither observes the other mid-flip.
fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn stgcn_losses(thread_cap: usize) -> Vec<u32> {
    let _cap = pool::ThreadCapGuard::new(thread_cap);
    pool::warmup();
    let mut cfg = SimConfig::new("determinism", Task::Speed, 8, 5);
    cfg.missing_rate = 0.0;
    let ds = simulate(&cfg);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let model = build_model("STGCN", &ctx, &mut rng);
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        max_batches_per_epoch: Some(8),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &train_cfg);
    // Compare exact bit patterns, not approximate values.
    report.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn stgcn_losses_identical_across_thread_counts() {
    let _guard = knob_lock();
    let serial = stgcn_losses(1);
    let pooled = stgcn_losses(8);
    assert_eq!(serial, pooled, "2-epoch STGCN losses must be bit-identical with 1 vs 8 threads");
}

#[test]
fn stgcn_losses_identical_with_simd_on_and_off() {
    let _guard = knob_lock();
    // TRAFFIC_SIMD=0 equivalent: every elementwise kernel runs the
    // scalar fallback.
    simd::set_force_scalar(true);
    let scalar = stgcn_losses(usize::MAX);
    // Default: AVX2 lane-wise kernels where the CPU supports them.
    simd::set_force_scalar(false);
    let vectorized = stgcn_losses(usize::MAX);
    assert_eq!(
        scalar, vectorized,
        "2-epoch STGCN losses must be bit-identical with SIMD on vs off (lane-wise path)"
    );
}

#[test]
fn stgcn_losses_deterministic_in_both_reduce_modes() {
    let _guard = knob_lock();
    // Default mode: sequential scalar reductions. Two runs must agree
    // bit-for-bit.
    simd::set_reduce_simd(false);
    let seq_a = stgcn_losses(usize::MAX);
    let seq_b = stgcn_losses(usize::MAX);
    assert_eq!(seq_a, seq_b, "sequential-reduction training must be run-to-run deterministic");
    // Opt-in TRAFFIC_SIMD_REDUCE=1: the 8-accumulator fold may differ
    // from sequential in low-order bits (association order), but must
    // itself be run-to-run deterministic at any thread count — slots
    // are reduced whole, so chunk boundaries never split a sum.
    simd::set_reduce_simd(true);
    let simd_a = stgcn_losses(1);
    let simd_b = stgcn_losses(8);
    simd::set_reduce_simd(false);
    assert_eq!(
        simd_a, simd_b,
        "SIMD-reduction training must be deterministic across runs and thread counts"
    );
}

#[test]
fn stgcn_losses_identical_with_live_server_on_and_scraped() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let _guard = knob_lock();
    // Baseline: no telemetry server, heartbeat is a single untracked
    // atomic load.
    let off = stgcn_losses(usize::MAX);

    // Same training with a live server attached AND under active load:
    // one thread hammering /metrics + /health, one holding /events
    // open. Observation must never perturb the arithmetic.
    let server =
        traffic_suite::obs::live::LiveServer::start("127.0.0.1:0").expect("bind live server");
    let addr = server.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for path in ["/metrics", "/health"] {
                    if let Ok(mut s) = TcpStream::connect(&addr) {
                        let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(1)));
                        let _ = write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n");
                        let mut buf = String::new();
                        let _ = s.read_to_string(&mut buf);
                    }
                }
            }
        })
    };
    let streamer = {
        let (addr, stop) = (addr, Arc::clone(&stop));
        std::thread::spawn(move || {
            if let Ok(mut s) = TcpStream::connect(&addr) {
                let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let _ = write!(s, "GET /events HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 4096];
                while !stop.load(Ordering::Relaxed) {
                    // Anything else is keepalives, events, or timeouts.
                    if let Ok(0) = s.read(&mut buf) {
                        break;
                    }
                }
            }
        })
    };
    let on = stgcn_losses(usize::MAX);
    stop.store(true, Ordering::Relaxed);
    scraper.join().unwrap();
    streamer.join().unwrap();
    drop(server);
    assert_eq!(
        off, on,
        "2-epoch STGCN losses must be bit-identical with the live server off vs scraped"
    );
}

#[test]
fn stgcn_losses_identical_with_mem_pool_on_and_off() {
    let _guard = knob_lock();
    // TRAFFIC_MEM_CAP=0 equivalent: recycling disabled, every buffer
    // comes fresh from the allocator.
    mem::set_mem_cap(0);
    mem::trim();
    let unpooled = stgcn_losses(usize::MAX);
    // Default-cap equivalent: buffers recycle through the size classes.
    mem::set_mem_cap(256 << 20);
    let recycled = stgcn_losses(usize::MAX);
    mem::set_mem_cap(usize::MAX);
    assert_eq!(
        unpooled, recycled,
        "2-epoch STGCN losses must be bit-identical with the buffer pool on vs off"
    );
}

// ---------------- scheduler: parallel vs serial sweeps ----------------

/// (dataset, model, horizon, metric bits, error) per Fig-1 row.
type Fig1Key = (String, String, String, [u32; 6], Option<String>);

/// Every Fig-1 field as exact bits (NaNs from FAILED rows compare as
/// their bit patterns, which are deterministic constants).
fn fig1_fingerprint(rows: &[Fig1Row]) -> Vec<Fig1Key> {
    rows.iter()
        .map(|r| {
            (
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                [
                    r.mae.0.to_bits(),
                    r.mae.1.to_bits(),
                    r.rmse.0.to_bits(),
                    r.rmse.1.to_bits(),
                    r.mape.0.to_bits(),
                    r.mape.1.to_bits(),
                ],
                r.error.clone(),
            )
        })
        .collect()
}

fn fig2_fingerprint(rows: &[Fig2Row]) -> Vec<(String, [u32; 7], Option<String>)> {
    rows.iter()
        .map(|r| {
            (
                r.model.clone(),
                [
                    r.overall.mae.to_bits(),
                    r.overall.rmse.to_bits(),
                    r.overall.mape.to_bits(),
                    r.difficult.mae.to_bits(),
                    r.difficult.rmse.to_bits(),
                    r.difficult.mape.to_bits(),
                    r.degradation_pct.to_bits(),
                ],
                r.error.clone(),
            )
        })
        .collect()
}

/// One full Fig-1 + Fig-2 sweep at `jobs` scheduler jobs. With
/// `fault_cell` set, the `abort` site is armed Soft and scoped to that
/// cell, so exactly one cell dies identically in either mode.
fn sweep_rows(jobs: usize, fault_cell: Option<&str>) -> (Vec<Fig1Row>, Vec<Fig2Row>) {
    use traffic_suite::obs::faults;
    set_jobs_override(Some(jobs));
    if let Some(cell) = fault_cell {
        faults::arm("abort", 1, faults::FaultMode::Soft);
        faults::set_cell_filter(Some(cell));
    }
    let scale = ExperimentScale::smoke();
    let f1 = model_comparison(&["METR-LA"], &["STGCN", "STSGCN"], &scale);
    let f2 = difficult_interval_experiment("METR-LA", &["STGCN", "STSGCN"], &scale);
    set_jobs_override(None);
    if fault_cell.is_some() {
        faults::reset();
    }
    (f1, f2)
}

#[test]
fn parallel_sweep_rows_identical_to_serial() {
    let _guard = knob_lock();
    let (f1_serial, f2_serial) = sweep_rows(1, None);
    let (f1_par, f2_par) = sweep_rows(4, None);
    assert!(f1_serial.iter().all(|r| r.error.is_none()), "healthy sweep must not fail");
    assert_eq!(
        fig1_fingerprint(&f1_serial),
        fig1_fingerprint(&f1_par),
        "Fig-1 rows must be bit-identical with TRAFFIC_JOBS=1 vs 4"
    );
    assert_eq!(
        fig2_fingerprint(&f2_serial),
        fig2_fingerprint(&f2_par),
        "Fig-2 rows must be bit-identical with TRAFFIC_JOBS=1 vs 4"
    );
}

#[test]
fn injected_fault_cell_fails_identically_in_both_modes() {
    let _guard = knob_lock();
    let cell = "fig1/METR-LA/STGCN";
    let (f1_serial, f2_serial) = sweep_rows(1, Some(cell));
    let (f1_par, f2_par) = sweep_rows(4, Some(cell));
    // The targeted cell dies; its rows carry the injected-panic reason.
    let failed: Vec<&Fig1Row> =
        f1_serial.iter().filter(|r| r.model == "STGCN" && r.dataset == "METR-LA").collect();
    assert!(!failed.is_empty());
    for r in &failed {
        let reason = r.error.as_deref().expect("faulted cell must yield FAILED rows");
        assert!(reason.contains("injected mid-epoch abort"), "unexpected reason: {reason}");
    }
    // Everything outside the scoped cell survives untouched.
    assert!(f1_serial.iter().filter(|r| r.model == "STSGCN").all(|r| r.error.is_none()));
    assert!(f2_serial.iter().all(|r| r.error.is_none()), "fig2 cells are outside the filter");
    // And the parallel run renders the exact same rows, FAILED included.
    assert_eq!(
        fig1_fingerprint(&f1_serial),
        fig1_fingerprint(&f1_par),
        "faulted Fig-1 rows must be bit-identical with TRAFFIC_JOBS=1 vs 4"
    );
    assert_eq!(
        fig2_fingerprint(&f2_serial),
        fig2_fingerprint(&f2_par),
        "Fig-2 rows must be bit-identical with TRAFFIC_JOBS=1 vs 4"
    );
}
