#!/usr/bin/env bash
# End-to-end smoke test for the experiment scheduler: the same tiny
# report generated on the legacy serial path (TRAFFIC_JOBS=1) and on
# the parallel scheduler (TRAFFIC_JOBS=4) must contain bit-identical
# experiment rows, and the parallel run's per-cell JSONL manifests must
# exist and parse through the insight run store.
#
# Table III is excluded from the row diff: it reports *wall-clock
# timings*, which legitimately differ run to run. Everything from Fig 1
# on (accuracy tables, winners, findings, Fig 2, Fig 3) must match
# byte for byte.
#
# Usage: scripts/sched_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/sched_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

ARGS=(--scale smoke --datasets METR-LA,PeMSD8 --models STGCN,STSGCN)

echo "[sched_smoke] 1/3 serial report (TRAFFIC_JOBS=1)…"
TRAFFIC_JOBS=1 cargo run --release -q --example full_report -- \
  "${ARGS[@]}" --out "$WORK/serial.md" >/dev/null

echo "[sched_smoke] 2/3 parallel report (TRAFFIC_JOBS=4, cell manifests on)…"
TRAFFIC_JOBS=4 TRAFFIC_CELL_MANIFESTS="$WORK/cells" \
  cargo run --release -q --example full_report -- \
  "${ARGS[@]}" --out "$WORK/parallel.md" >/dev/null

# Rows must be bit-identical from Fig 1 onward (Table III is timing).
awk '/^## Fig 1/,0' "$WORK/serial.md" >"$WORK/serial.rows"
awk '/^## Fig 1/,0' "$WORK/parallel.md" >"$WORK/parallel.rows"
[[ -s "$WORK/serial.rows" ]] || { echo "FAIL: serial report has no Fig 1 section"; exit 1; }
if ! diff -u "$WORK/serial.rows" "$WORK/parallel.rows"; then
  echo "FAIL: parallel rows differ from serial"
  exit 1
fi

echo "[sched_smoke] 3/3 per-cell manifests…"
# 2 datasets x (1 prepare + 2 train) + 2 fig2 cells = 8 manifests.
count=$(ls "$WORK/cells"/*.jsonl 2>/dev/null | wc -l)
[[ "$count" -ge 8 ]] || {
  echo "FAIL: expected >= 8 cell manifests, found $count"
  ls "$WORK/cells" || true
  exit 1
}
for want in fig1-METR-LA-STGCN fig1-PeMSD8-prepare fig2-METR-LA-STSGCN; do
  [[ -s "$WORK/cells/$want.jsonl" ]] || {
    echo "FAIL: manifest $want.jsonl missing or empty"
    exit 1
  }
done
# Every manifest must parse through the insight run store.
cargo run --release -q --bin insight -- list --dir "$WORK/cells" \
  | tee "$WORK/list.log"
for want in fig1-METR-LA-STGCN fig1-METR-LA-STSGCN fig2-METR-LA-STGCN; do
  grep -q "$want" "$WORK/list.log" || {
    echo "FAIL: 'insight list' does not show $want"
    exit 1
  }
done

echo "[sched_smoke] OK (rows bit-identical, $count manifests parse)"
