//! Integration tests: full pipelines from simulation through training to
//! evaluation, spanning every workspace crate.

use traffic_suite::core::{
    eval_split, predict, prepare_experiment, sample_difficult_mask, train_model, ExperimentScale,
};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::metrics::{evaluate, evaluate_horizons, PAPER_HORIZONS};
use traffic_suite::models::{build_model, GraphContext};

fn smoke() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn train_and_evaluate_graph_wavenet_improves_over_init() {
    let scale = smoke();
    let exp = prepare_experiment("METR-LA", &scale, 7);
    let test = eval_split(&exp.data.test, &scale);
    // Untrained baseline.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let untrained = build_model("Graph-WaveNet", &exp.ctx, &mut rng);
    let before =
        evaluate(&predict(untrained.as_ref(), &test, &exp.data.scaler, 8), &test.y_raw, None);
    // Trained.
    let mut scale2 = smoke();
    scale2.epochs = 2;
    scale2.max_train_batches = Some(30);
    let (model, report) = train_model("Graph-WaveNet", &exp, &scale2, 7);
    let after = evaluate(&predict(model.as_ref(), &test, &exp.data.scaler, 8), &test.y_raw, None);
    assert!(after.mae < before.mae, "training should improve MAE: {} -> {}", before.mae, after.mae);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn all_eight_models_complete_one_training_step() {
    let scale = smoke();
    let exp = prepare_experiment("PeMSD8", &scale, 3);
    let mut tiny = smoke();
    tiny.epochs = 1;
    tiny.max_train_batches = Some(2);
    for name in traffic_suite::models::ALL_MODELS {
        let (model, report) = train_model(name, &exp, &tiny, 5);
        // per-model profiles may multiply the epoch budget (GMAN trains 2×)
        assert!(!report.epoch_losses.is_empty(), "{name}");
        assert!(report.epoch_losses[0].is_finite(), "{name}");
        assert!(!model.store().has_non_finite(), "{name} has NaN weights");
        let test = eval_split(&exp.data.test, &tiny);
        let pred = predict(model.as_ref(), &test, &exp.data.scaler, 8);
        assert_eq!(pred.shape(), test.y_raw.shape(), "{name}");
        assert!(!pred.has_non_finite(), "{name} produced NaN predictions");
    }
}

#[test]
fn results_reproducible_under_fixed_seed() {
    let scale = smoke();
    let exp1 = prepare_experiment("METR-LA", &scale, 11);
    let exp2 = prepare_experiment("METR-LA", &scale, 11);
    assert_eq!(exp1.dataset.values, exp2.dataset.values, "simulation must be deterministic");
    let mut tiny = smoke();
    tiny.epochs = 1;
    tiny.max_train_batches = Some(4);
    let (m1, _) = train_model("STSGCN", &exp1, &tiny, 21);
    let (m2, _) = train_model("STSGCN", &exp2, &tiny, 21);
    let test1 = eval_split(&exp1.data.test, &tiny);
    let test2 = eval_split(&exp2.data.test, &tiny);
    let p1 = predict(m1.as_ref(), &test1, &exp1.data.scaler, 8);
    let p2 = predict(m2.as_ref(), &test2, &exp2.data.scaler, 8);
    assert_eq!(p1, p2, "identical seeds must give identical predictions");
}

#[test]
fn different_seeds_give_different_models() {
    let scale = smoke();
    let exp = prepare_experiment("METR-LA", &scale, 11);
    let mut tiny = smoke();
    tiny.epochs = 1;
    tiny.max_train_batches = Some(2);
    let (m1, _) = train_model("STG2Seq", &exp, &tiny, 1);
    let (m2, _) = train_model("STG2Seq", &exp, &tiny, 2);
    let test = eval_split(&exp.data.test, &tiny);
    let p1 = predict(m1.as_ref(), &test, &exp.data.scaler, 8);
    let p2 = predict(m2.as_ref(), &test, &exp.data.scaler, 8);
    assert_ne!(p1, p2);
}

#[test]
fn difficult_mask_pipeline_marks_upper_quartile() {
    let scale = smoke();
    let exp = prepare_experiment("PeMS-BAY", &scale, 13);
    let test = eval_split(&exp.data.test, &scale);
    let mask = sample_difficult_mask(&exp.dataset, &test);
    let frac = mask.mean_all();
    assert!(frac > 0.1 && frac < 0.55, "difficult fraction should be near 25%, got {frac}");
    // Evaluating with the mask must use fewer points than without.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let model = build_model("STG2Seq", &exp.ctx, &mut rng);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, 8);
    let overall = evaluate(&pred, &test.y_raw, None);
    let difficult = evaluate(&pred, &test.y_raw, Some(&mask));
    assert!(difficult.count < overall.count);
    assert!(difficult.count > 0);
}

#[test]
fn horizon_errors_grow_for_trained_model() {
    // Fundamental sanity: 60-minute predictions should be harder than
    // 15-minute ones once the model has actually learned something.
    let mut scale = smoke();
    scale.epochs = 3;
    scale.max_train_batches = Some(40);
    scale.max_test_samples = Some(60);
    let exp = prepare_experiment("METR-LA", &scale, 17);
    let (model, _) = train_model("Graph-WaveNet", &exp, &scale, 17);
    let test = eval_split(&exp.data.test, &scale);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let ms = evaluate_horizons(&pred, &test.y_raw, &PAPER_HORIZONS, None);
    assert!(
        ms[2].mae > ms[0].mae,
        "60-min MAE {} should exceed 15-min MAE {}",
        ms[2].mae,
        ms[0].mae
    );
}

#[test]
fn custom_dataset_pipeline_without_catalog() {
    // The public API must work for user-defined datasets, not only the
    // seven presets.
    let ds = simulate(&SimConfig::new("custom-city", Task::Flow, 14, 5));
    assert_eq!(ds.name, "custom-city");
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let model = build_model("GMAN", &ctx, &mut rng);
    let pred = predict(model.as_ref(), &data.test.truncate(10), &data.scaler, 4);
    assert_eq!(pred.shape()[0], 10);
    assert!(!pred.has_non_finite());
}
