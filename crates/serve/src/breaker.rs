//! Per-model circuit breaker.
//!
//! A model that panics or emits non-finite outputs on consecutive
//! batches is *tripped*: the engine stops routing real traffic through
//! it and serves the persistence-baseline fallback (`DEGRADED`)
//! instead. While open, every `probe_every`-th batch is still sent
//! through the model as a **probe**; one fully-finite probe closes the
//! breaker. Probing is keyed on the batch counter, not wall time, so
//! recovery behaviour is deterministic under test.

/// Circuit breaker state machine. Pure — no clocks, no metrics; the
/// engine owns side effects so transitions stay unit-testable.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    probe_every: u64,
    consecutive: u32,
    open: bool,
    trips: u64,
}

impl Breaker {
    /// Trips after `threshold` consecutive failures; while open, probes
    /// on every `probe_every`-th batch.
    pub fn new(threshold: u32, probe_every: u64) -> Self {
        assert!(threshold > 0 && probe_every > 0);
        Breaker { threshold, probe_every, consecutive: 0, open: false, trips: 0 }
    }

    /// Is the model currently considered broken?
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Lifetime trip count (for `/status` and `BENCH_serve.json`).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Should `batch_idx` go through the real model? Always while
    /// closed; every `probe_every`-th batch while open.
    pub fn allow_real(&self, batch_idx: u64) -> bool {
        !self.open || batch_idx.is_multiple_of(self.probe_every)
    }

    /// A fully-finite forward completed. Returns `true` when this
    /// *closes* an open breaker (a successful probe).
    pub fn record_success(&mut self) -> bool {
        self.consecutive = 0;
        std::mem::replace(&mut self.open, false)
    }

    /// A forward panicked or produced non-finite outputs. Returns
    /// `true` when this failure *trips* the breaker.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive = self.consecutive.saturating_add(1);
        if !self.open && self.consecutive >= self.threshold {
            self.open = true;
            self.trips += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_on_consecutive_failures() {
        let mut b = Breaker::new(3, 4);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.record_success(), "success while closed is not a close event");
        assert!(!b.record_failure(), "the streak was reset");
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn probes_are_periodic_while_open() {
        let mut b = Breaker::new(1, 4);
        assert!(b.record_failure());
        let allowed: Vec<u64> = (0..10).filter(|&i| b.allow_real(i)).collect();
        assert_eq!(allowed, vec![0, 4, 8]);
        assert!(b.record_success(), "successful probe closes the breaker");
        assert!(!b.is_open());
        assert!(b.allow_real(1), "closed breaker allows everything");
    }

    #[test]
    fn reopen_counts_a_second_trip() {
        let mut b = Breaker::new(2, 2);
        b.record_failure();
        assert!(b.record_failure());
        b.record_success();
        b.record_failure();
        assert!(b.record_failure());
        assert_eq!(b.trips(), 2);
    }
}
