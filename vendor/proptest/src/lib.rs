//! Offline vendored subset of the `proptest` API.
//!
//! This workspace builds without network access, so the slice of
//! proptest it uses is reimplemented here: the [`proptest!`] macro
//! (including `#![proptest_config(..)]`), range/tuple/`Just` strategies,
//! `prop::collection::vec`, `prop_map`/`prop_flat_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: generation is deterministic per test
//! (seeded from the test's module path and name), there is no shrinking
//! — a failing case panics immediately with the generated inputs'
//! debug output where available — and no persistence of regression
//! files. For the algebraic-law style tests in this workspace that
//! trade-off is fine: failures remain reproducible because the stream
//! is deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Main harness macro: a block of `#[test] fn name(pat in strategy, ..) { .. }`
/// items, each run for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            // the immediately-called closure is the `?`/early-return
            // boundary for prop_assume! rejections
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(1000);
                while __passed < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: too many rejected cases ({__passed} passed of {} wanted)",
                        __config.cases,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&{ $strat }, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if __outcome.is_ok() {
                        __passed += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Rejects the current case (does not count towards `cases`) when the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.5f32..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u8..4, 0u64..100).prop_map(|(a, b)| (a, b + 1))) {
            prop_assert!(a < 4);
            prop_assert!((1..=100).contains(&b));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0i32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn flat_map_links_sizes(pair in (1usize..6).prop_flat_map(|n| {
            (prop::collection::vec(0.0f64..1.0, n..=n), Just(n))
        })) {
            let (v, n) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
