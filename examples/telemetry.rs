//! Telemetry demo: trains one model with the console sink showing live
//! per-epoch loss lines, writes a JSONL manifest under `reports/runs/`,
//! then parses the manifest back and prints where the time went.
//!
//! ```sh
//! cargo run --release --example telemetry -- --scale smoke
//! ```

use traffic_suite::core::{
    eval_split, prepare_experiment, render_span_summary, timed_predict, train_model,
};
use traffic_suite::obs;

fn main() {
    let scale = traffic_suite::scale_from_args();
    let marker = obs::span_marker();

    let run = obs::Run::named("telemetry-demo")
        .console(true)
        .jsonl("reports/runs")
        .start()
        .expect("reports/runs must be writable");
    let manifest = run.manifest_path().expect("jsonl sink requested").to_path_buf();

    let exp = prepare_experiment("METR-LA", &scale, 42);
    let (model, report) = train_model("Graph-WaveNet", &exp, &scale, 7);
    let test = eval_split(&exp.data.test, &scale);
    let (_pred, inference) =
        timed_predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    run.finish(); // summary metrics + run_end, sinks detached

    println!("\n== where the time went ==\n{}", render_span_summary(marker));
    println!(
        "trained {} epochs (mean {:.2?}/epoch), inference over {} windows took {:.2?}",
        report.epoch_losses.len(),
        report.mean_epoch_time,
        test.len(),
        inference
    );

    // The manifest is plain JSONL: one event per line, parseable with
    // the bundled zero-dependency parser.
    let content = std::fs::read_to_string(&manifest).expect("manifest readable");
    let mut kinds = std::collections::BTreeMap::new();
    for line in content.lines() {
        let ev = obs::json::parse(line).expect("valid JSON line");
        let kind = ev.get("type").and_then(|v| v.as_str()).unwrap_or("?").to_string();
        *kinds.entry(kind).or_insert(0usize) += 1;
    }
    println!("\n== manifest {} ==", manifest.display());
    for (kind, n) in &kinds {
        println!("  {kind:<18} × {n}");
    }
    let last = content.lines().last().expect("non-empty manifest");
    println!(
        "\nfinal event, pretty-printed:\n{}",
        obs::json::pretty(&obs::json::parse(last).unwrap())
    );
}
