//! The dense, contiguous, row-major `f32` tensor underlying everything else.
//!
//! `Tensor` is immutable-by-convention: operations return new tensors, and
//! cloning is cheap (the buffer is behind an [`Arc`]). The optimizer mutates
//! parameters in place through the `*_inplace` / `*_assign` kernels, which
//! copy-on-write via [`Tensor::make_mut`] when the buffer is shared.
//!
//! Backing stores come from (and return to) the traffic-mem size-class
//! pool ([`crate::mem`]): output buffers of every kernel are pooled, so
//! steady-state training steps recycle instead of allocating.

use std::sync::Arc;

use crate::mem::{self, Buffer};
use crate::pool;
use crate::shape::{broadcast_shapes, broadcast_strides, for_each_broadcast2, numel, strides_for};
use crate::simd;

/// Elementwise kernels at or above this many elements fan out across
/// the worker pool; smaller ones run inline (dispatch costs more than
/// the loop). Chunks map one-to-one between input and output, so the
/// result is identical at any thread count.
pub(crate) const ELEMENTWISE_PAR_THRESHOLD: usize = 1 << 16;

/// Raw-pointer wrapper so a fused multi-output kernel can hand disjoint
/// windows of its side outputs to pool tasks (mirroring the disjoint
/// chunks `parallel_chunks_mut` makes of the primary output). Soundness
/// is argued at each use site.
#[derive(Clone, Copy)]
struct SendMutPtr(*mut f32);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}

/// Odometer over the cartesian product of `dims`, calling
/// `f(dst_offset, src_offset)` for every coordinate with the two
/// offsets accumulated from the given stride sets. With empty `dims`
/// calls `f(0, 0)` once.
fn for_each_offsets(
    dims: &[usize],
    dst_strides: &[usize],
    src_strides: &[usize],
    mut f: impl FnMut(usize, usize),
) {
    let total: usize = dims.iter().product();
    let mut coords = vec![0usize; dims.len()];
    let (mut doff, mut soff) = (0usize, 0usize);
    for _ in 0..total {
        f(doff, soff);
        for ax in (0..dims.len()).rev() {
            coords[ax] += 1;
            doff += dst_strides[ax];
            soff += src_strides[ax];
            if coords[ax] < dims[ax] {
                break;
            }
            doff -= dims[ax] * dst_strides[ax];
            soff -= dims[ax] * src_strides[ax];
            coords[ax] = 0;
        }
    }
}

/// A dense row-major `f32` tensor of arbitrary rank.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Buffer>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(f, "Tensor{:?} {:?}{}", self.shape, preview, if self.len() > 8 { "…" } else { "" })
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from raw data. Panics if `data.len() != numel(shape)`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data: Arc::new(Buffer::from_vec(data)), shape: shape.to_vec() }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::from_vec(mem::take_zeroed(numel(shape)), shape)
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(mem::take_filled(numel(shape), v), shape)
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = mem::take_zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        let mut data = mem::take_uninit(n);
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f32;
        }
        Tensor::from_vec(data, &[n])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view; clones the buffer if it is shared (copy-on-write).
    pub fn make_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its buffer (cloning only if shared).
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(mut buf) => buf.take_vec(),
            Err(arc) => arc.to_vec(),
        }
    }

    /// The single value of a one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a one-element tensor, got {:?}", self.shape);
        self.data[0]
    }

    /// Value at multi-dimensional coordinates.
    pub fn at(&self, coords: &[usize]) -> f32 {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let strides = strides_for(&self.shape);
        for (i, (&c, &d)) in coords.iter().zip(&self.shape).enumerate() {
            assert!(c < d, "coordinate {c} out of bounds for axis {i} (size {d})");
        }
        self.data[crate::shape::ravel(coords, &strides)]
    }

    // ------------------------------------------------------------------
    // Elementwise (unary)
    // ------------------------------------------------------------------

    /// Applies `f` to every element. Large tensors are processed in
    /// parallel chunks on the worker pool.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = mem::take_uninit(self.len());
        let src: &[f32] = &self.data;
        if self.len() < ELEMENTWISE_PAR_THRESHOLD {
            for (o, &v) in out.iter_mut().zip(src) {
                *o = f(v);
            }
            return Tensor::from_vec(out, &self.shape);
        }
        let chunk = self.len().div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            let src = &src[base..base + dst.len()];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = f(v);
            }
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// In-place [`Tensor::map`]: overwrites every element with `f(x)`.
    /// Copies first (from the pool) when the buffer is shared.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let n = self.len();
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            for v in buf.iter_mut() {
                *v = f(*v);
            }
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |_ci, dst| {
            for v in dst.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Elementwise combination with an identically-shaped tensor (no
    /// broadcasting; use the operator impls for broadcasting).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map requires identical shapes");
        let mut out = mem::take_uninit(self.len());
        let (a, b): (&[f32], &[f32]) = (&self.data, &other.data);
        if self.len() < ELEMENTWISE_PAR_THRESHOLD {
            for (i, o) in out.iter_mut().enumerate() {
                *o = f(a[i], b[i]);
            }
            return Tensor::from_vec(out, &self.shape);
        }
        let chunk = self.len().div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            for (i, o) in dst.iter_mut().enumerate() {
                *o = f(a[base + i], b[base + i]);
            }
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// In-place [`Tensor::zip_map`]: `self[i] = f(self[i], other[i])`.
    /// Exact same per-element arithmetic as the allocating form, so a
    /// rewrite from `x = x.zip_map(..)` to `x.zip_map_assign(..)` is
    /// bit-identical.
    pub fn zip_map_assign(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) {
        assert_eq!(self.shape, other.shape, "zip_map_assign requires identical shapes");
        let n = self.len();
        let src: &[f32] = &other.data;
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            for (v, &b) in buf.iter_mut().zip(src) {
                *v = f(*v, b);
            }
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |ci, dst| {
            let base = ci * chunk;
            for (i, v) in dst.iter_mut().enumerate() {
                *v = f(*v, src[base + i]);
            }
        });
    }

    /// Ternary in-place kernel: `self[i] = f(self[i], a[i], b[i])`.
    /// Used by the fused optimizer step (one pass over `p`, `m`, `v`
    /// instead of six temporaries).
    pub fn zip_map2_assign(
        &mut self,
        a: &Tensor,
        b: &Tensor,
        f: impl Fn(f32, f32, f32) -> f32 + Sync,
    ) {
        assert_eq!(self.shape, a.shape, "zip_map2_assign requires identical shapes");
        assert_eq!(self.shape, b.shape, "zip_map2_assign requires identical shapes");
        let n = self.len();
        let (sa, sb): (&[f32], &[f32]) = (&a.data, &b.data);
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            for (i, v) in buf.iter_mut().enumerate() {
                *v = f(*v, sa[i], sb[i]);
            }
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |ci, dst| {
            let base = ci * chunk;
            for (i, v) in dst.iter_mut().enumerate() {
                *v = f(*v, sa[base + i], sb[base + i]);
            }
        });
    }

    // ------------------------------------------------------------------
    // SIMD-routed elementwise kernels
    //
    // The named-op entry points below (`add`, `mul_scalar`, the fused
    // optimizer updates, …) funnel through `crate::simd`'s fixed kernel
    // vocabulary instead of the generic closure loops, so they run 8
    // lanes at a time when the CPU supports it. Lane-wise kernels are
    // bit-identical to their scalar forms (see `simd` module docs), so
    // this routing never changes results. Generic `map`/`zip_map`
    // closures stay scalar.
    // ------------------------------------------------------------------

    /// Elementwise [`simd::Unary`] kernel over the whole tensor
    /// (vectorized when dispatch allows; parallel when large).
    pub fn apply_unary(&self, op: simd::Unary) -> Tensor {
        let n = self.len();
        let mut prof = traffic_obs::profile::op("elem", op.name());
        prof.set_flops(n * op.flops_per_elem());
        prof.set_bytes(n * 8);
        let mut out = mem::take_uninit(n);
        let src: &[f32] = &self.data;
        if n < ELEMENTWISE_PAR_THRESHOLD {
            simd::unary(op, src, &mut out);
            return Tensor::from_vec(out, &self.shape);
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            simd::unary(op, &src[base..base + dst.len()], dst);
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// In-place [`Tensor::apply_unary`].
    pub fn apply_unary_inplace(&mut self, op: simd::Unary) {
        let n = self.len();
        let mut prof = traffic_obs::profile::op("elem", op.name());
        prof.set_flops(n * op.flops_per_elem());
        prof.set_bytes(n * 8);
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            simd::unary_inplace(op, buf);
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |_ci, dst| {
            simd::unary_inplace(op, dst);
        });
    }

    /// Elementwise [`simd::Binary`] kernel against an identically-shaped
    /// tensor: `out[i] = op(self[i], other[i])`.
    pub fn apply_binary(&self, other: &Tensor, op: simd::Binary) -> Tensor {
        assert_eq!(self.shape, other.shape, "apply_binary requires identical shapes");
        let n = self.len();
        let mut prof = traffic_obs::profile::op("elem", op.name());
        prof.set_flops(n * op.flops_per_elem());
        prof.set_bytes(n * 12);
        let mut out = mem::take_uninit(n);
        let (a, b): (&[f32], &[f32]) = (&self.data, &other.data);
        if n < ELEMENTWISE_PAR_THRESHOLD {
            simd::binary(op, a, b, &mut out);
            return Tensor::from_vec(out, &self.shape);
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            simd::binary(op, &a[base..base + dst.len()], &b[base..base + dst.len()], dst);
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// In-place [`Tensor::apply_binary`]: `self[i] = op(self[i], other[i])`.
    pub fn apply_binary_assign(&mut self, other: &Tensor, op: simd::Binary) {
        assert_eq!(self.shape, other.shape, "apply_binary_assign requires identical shapes");
        let n = self.len();
        let mut prof = traffic_obs::profile::op("elem", op.name());
        prof.set_flops(n * op.flops_per_elem());
        prof.set_bytes(n * 12);
        let src: &[f32] = &other.data;
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            simd::binary_assign(op, buf, src);
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |ci, dst| {
            let base = ci * chunk;
            simd::binary_assign(op, dst, &src[base..base + dst.len()]);
        });
    }

    /// In-place [`simd::Ternary`] kernel:
    /// `self[i] = op(self[i], a[i], b[i])` (fused optimizer update).
    pub fn apply_ternary_assign(&mut self, a: &Tensor, b: &Tensor, op: simd::Ternary) {
        assert_eq!(self.shape, a.shape, "apply_ternary_assign requires identical shapes");
        assert_eq!(self.shape, b.shape, "apply_ternary_assign requires identical shapes");
        let n = self.len();
        let mut prof = traffic_obs::profile::op("elem", op.name());
        prof.set_flops(n * op.flops_per_elem());
        prof.set_bytes(n * 16);
        let (sa, sb): (&[f32], &[f32]) = (&a.data, &b.data);
        let buf = self.make_mut();
        if n < ELEMENTWISE_PAR_THRESHOLD {
            simd::ternary_assign(op, buf, sa, sb);
            return;
        }
        let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
        pool::parallel_chunks_mut(buf, chunk, |ci, dst| {
            let base = ci * chunk;
            simd::ternary_assign(op, dst, &sa[base..base + dst.len()], &sb[base..base + dst.len()]);
        });
    }

    /// Fused gated activation `tanh(f) ⊙ σ(g)` (identical shapes).
    ///
    /// Returns `(out, t, s)` where `t = tanh(f)` and `s = σ(g)` — the
    /// two saved activations the backward pass needs — computed in one
    /// pass instead of the three passes (tanh, sigmoid, mul) the
    /// unfused composition records. Uses [`crate::fastmath::tanh`];
    /// arithmetic is element-for-element identical to
    /// `f.map(fastmath::tanh)`, `g.map(fastmath::sigmoid)`, `t.mul(&s)`.
    pub fn gated_tanh_sigmoid(f: &Tensor, g: &Tensor) -> (Tensor, Tensor, Tensor) {
        assert_eq!(f.shape, g.shape, "gated_tanh_sigmoid requires identical shapes");
        let n = f.len();
        let mut prof = traffic_obs::profile::op("elem", "gated_fwd");
        prof.set_flops(n * 41); // tanh (22) + sigmoid (18) + mul
        prof.set_bytes(n * 20); // 2 reads + 3 writes
        let (fd, gd): (&[f32], &[f32]) = (&f.data, &g.data);
        let mut t = mem::take_uninit(n);
        let mut s = mem::take_uninit(n);
        let mut out = mem::take_uninit(n);
        let kernel = simd::gated_fwd;
        if n < ELEMENTWISE_PAR_THRESHOLD {
            kernel(fd, gd, &mut t, &mut s, &mut out);
        } else {
            let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
            let (tp, sp) = (SendMutPtr(t.as_mut_ptr()), SendMutPtr(s.as_mut_ptr()));
            pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
                let (tp, sp) = (tp, sp); // capture the Sync wrappers, not the raw fields
                let base = ci * chunk;
                // SAFETY: chunks are disjoint slices of `out`, and the
                // matching `[base, base + len)` windows of `t` and `s`
                // are therefore disjoint too; both vecs outlive the
                // dispatch (joined before this function returns).
                let (tc, sc) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(tp.0.add(base), dst.len()),
                        std::slice::from_raw_parts_mut(sp.0.add(base), dst.len()),
                    )
                };
                kernel(&fd[base..base + dst.len()], &gd[base..base + dst.len()], tc, sc, dst);
            });
        }
        (
            Tensor::from_vec(out, &f.shape),
            Tensor::from_vec(t, &f.shape),
            Tensor::from_vec(s, &f.shape),
        )
    }

    /// Backward of [`Tensor::gated_tanh_sigmoid`] in one pass:
    /// `gf = (grad·s)·(1 − t²)`, `gg = ((grad·t)·s)·(1 − s)` — the same
    /// association order as the unfused mul/tanh/sigmoid backward chain,
    /// so the fused op is bit-identical end to end.
    pub fn gated_tanh_sigmoid_backward(grad: &Tensor, t: &Tensor, s: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(grad.shape, t.shape, "gated_tanh_sigmoid_backward shape mismatch");
        assert_eq!(grad.shape, s.shape, "gated_tanh_sigmoid_backward shape mismatch");
        let n = grad.len();
        let mut prof = traffic_obs::profile::op("elem", "gated_bwd");
        prof.set_flops(n * 9);
        prof.set_bytes(n * 20); // 3 reads + 2 writes
        let (gd, td, sd): (&[f32], &[f32], &[f32]) = (&grad.data, &t.data, &s.data);
        let mut gf = mem::take_uninit(n);
        let mut gg = mem::take_uninit(n);
        let kernel = simd::gated_bwd;
        if n < ELEMENTWISE_PAR_THRESHOLD {
            kernel(gd, td, sd, &mut gf, &mut gg);
        } else {
            let chunk = n.div_ceil(pool::effective_threads() * 2).max(1);
            let gp = SendMutPtr(gg.as_mut_ptr());
            pool::parallel_chunks_mut(&mut gf, chunk, move |ci, dst| {
                let gp = gp; // capture the Sync wrapper, not the raw field
                let base = ci * chunk;
                // SAFETY: disjoint windows of `gg` mirror the disjoint
                // chunks of `gf`; `gg` outlives the joined dispatch.
                let gc = unsafe { std::slice::from_raw_parts_mut(gp.0.add(base), dst.len()) };
                kernel(
                    &gd[base..base + dst.len()],
                    &td[base..base + dst.len()],
                    &sd[base..base + dst.len()],
                    dst,
                    gc,
                );
            });
        }
        (Tensor::from_vec(gf, &grad.shape), Tensor::from_vec(gg, &grad.shape))
    }

    /// Fused in-place accumulate: `self += other` (identical shapes).
    /// Bit-identical to `self = self.add(other)` for equal shapes.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.apply_binary_assign(other, simd::Binary::Add);
    }

    /// Fused axpy: `self += alpha * other` (identical shapes).
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &Tensor) {
        self.apply_binary_assign(other, simd::Binary::Axpy(alpha));
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        self.apply_unary(simd::Unary::Neg)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.apply_unary(simd::Unary::Abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(|v| v.powf(p))
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.apply_unary(simd::Unary::AddS(s))
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.apply_unary(simd::Unary::MulS(s))
    }

    /// Elementwise maximum with a scalar.
    pub fn clamp_min(&self, lo: f32) -> Tensor {
        self.apply_unary(simd::Unary::MaxS(lo))
    }

    /// Elementwise minimum with a scalar.
    pub fn clamp_max(&self, hi: f32) -> Tensor {
        self.apply_unary(simd::Unary::MinS(hi))
    }

    /// Elementwise fast tanh ([`crate::fastmath::tanh`], vectorized).
    pub fn tanh(&self) -> Tensor {
        self.apply_unary(simd::Unary::Tanh)
    }

    /// Elementwise logistic sigmoid ([`crate::fastmath::sigmoid`],
    /// vectorized).
    pub fn sigmoid(&self) -> Tensor {
        self.apply_unary(simd::Unary::Sigmoid)
    }

    // ------------------------------------------------------------------
    // Broadcast binary kernels
    // ------------------------------------------------------------------

    /// Broadcasting binary op. Panics on incompatible shapes.
    pub fn broadcast_zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape == other.shape {
            // Fast path: no index arithmetic (parallel when large).
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape));
        let a_str = broadcast_strides(&self.shape, &out_shape);
        let b_str = broadcast_strides(&other.shape, &out_shape);
        let mut out = mem::take_uninit(numel(&out_shape));
        let a = &self.data;
        let b = &other.data;
        for_each_broadcast2(&out_shape, &a_str, &b_str, |o, ai, bi| {
            out[o] = f(a[ai], b[bi]);
        });
        Tensor::from_vec(out, &out_shape)
    }

    /// Broadcast add. Same-shape operands take the vectorized rail.
    pub fn add(&self, other: &Tensor) -> Tensor {
        if self.shape == other.shape {
            return self.apply_binary(other, simd::Binary::Add);
        }
        self.broadcast_zip(other, |a, b| a + b)
    }

    /// Broadcast subtract. Same-shape operands take the vectorized rail.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        if self.shape == other.shape {
            return self.apply_binary(other, simd::Binary::Sub);
        }
        self.broadcast_zip(other, |a, b| a - b)
    }

    /// Broadcast multiply. Same-shape operands take the vectorized rail.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        if self.shape == other.shape {
            return self.apply_binary(other, simd::Binary::Mul);
        }
        self.broadcast_zip(other, |a, b| a * b)
    }

    /// Broadcast divide. Same-shape operands take the vectorized rail.
    pub fn div(&self, other: &Tensor) -> Tensor {
        if self.shape == other.shape {
            return self.apply_binary(other, simd::Binary::Div);
        }
        self.broadcast_zip(other, |a, b| a / b)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the buffer under a new shape with equal element count.
    /// Zero-copy (shares the buffer).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { data: Arc::clone(&self.data), shape: shape.to_vec() }
    }

    /// Reorders axes. `perm` must be a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = strides_for(&self.shape);
        // Stride of output axis i is the input stride of the axis it came from.
        let src_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let out_strides = strides_for(&out_shape);
        let mut out = mem::take_uninit(self.len());
        let data: &[f32] = &self.data;
        let r = out_shape.len();
        if r == 0 || self.is_empty() {
            out.copy_from_slice(data);
            return Tensor::from_vec(out, &out_shape);
        }
        if src_strides[r - 1] == 1 {
            // The innermost output axis is contiguous in the source:
            // copy whole runs instead of walking elements.
            let run = out_shape[r - 1];
            for_each_offsets(
                &out_shape[..r - 1],
                &out_strides[..r - 1],
                &src_strides[..r - 1],
                |doff, soff| out[doff..doff + run].copy_from_slice(&data[soff..soff + run]),
            );
            return Tensor::from_vec(out, &out_shape);
        }
        // General case: the source's innermost axis landed at output
        // position `q` (exists and differs from r-1 here). Tile the
        // (q, last) plane — reads stream contiguously along `q`, writes
        // along the last axis — instead of a strided per-element walk.
        let q = perm.iter().position(|&p| p == self.rank() - 1).expect("perm is a permutation");
        let (m, n) = (out_shape[q], out_shape[r - 1]);
        let (dq, sj) = (out_strides[q], src_strides[r - 1]);
        let outer: Vec<usize> = (0..r - 1).filter(|&ax| ax != q).collect();
        let outer_shape: Vec<usize> = outer.iter().map(|&ax| out_shape[ax]).collect();
        let outer_dst: Vec<usize> = outer.iter().map(|&ax| out_strides[ax]).collect();
        let outer_src: Vec<usize> = outer.iter().map(|&ax| src_strides[ax]).collect();
        const TILE: usize = 32;
        for_each_offsets(&outer_shape, &outer_dst, &outer_src, |doff, soff| {
            for i0 in (0..m).step_by(TILE) {
                let ie = (i0 + TILE).min(m);
                for j0 in (0..n).step_by(TILE) {
                    let je = (j0 + TILE).min(n);
                    for i in i0..ie {
                        let (d_row, s_col) = (doff + i * dq, soff + i);
                        let dst = &mut out[d_row + j0..d_row + je];
                        for (jj, o) in dst.iter_mut().enumerate() {
                            *o = data[s_col + (j0 + jj) * sj];
                        }
                    }
                }
            }
        });
        Tensor::from_vec(out, &out_shape)
    }

    /// Swaps the last two axes (matrix transpose, batched).
    pub fn t(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 2, "t() requires rank >= 2");
        let mut perm: Vec<usize> = (0..r).collect();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Extracts `len` consecutive slices starting at `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        crate::shape::check_axis(axis, self.rank());
        assert!(
            start + len <= self.shape[axis],
            "narrow [{start}, {}) exceeds axis {axis} of size {}",
            start + len,
            self.shape[axis]
        );
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let d = self.shape[axis];
        let mut out = mem::take_capacity(outer * len * inner);
        for o in 0..outer {
            let base = o * d * inner + start * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut shape = self.shape.clone();
        shape[axis] = len;
        Tensor::from_vec(out, &shape)
    }

    /// Concatenates tensors along `axis`. All other axes must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].rank();
        crate::shape::check_axis(axis, rank);
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for ax in 0..rank {
                if ax != axis {
                    assert_eq!(
                        p.shape[ax], parts[0].shape[ax],
                        "concat shape mismatch on axis {ax}"
                    );
                }
            }
        }
        let outer: usize = parts[0].shape[..axis].iter().product();
        let inner: usize = parts[0].shape[axis + 1..].iter().product();
        let total_axis: usize = parts.iter().map(|p| p.shape[axis]).sum();
        let mut out = mem::take_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for p in parts {
                let d = p.shape[axis];
                let base = o * d * inner;
                out.extend_from_slice(&p.data[base..base + d * inner]);
            }
        }
        let mut shape = parts[0].shape.clone();
        shape[axis] = total_axis;
        Tensor::from_vec(out, &shape)
    }

    /// Zero-pads each axis by `(before, after)` amounts.
    ///
    /// Writes the output in contiguous runs — zero fills exactly where
    /// padding lives, bulk copies for interior rows — so the buffer can
    /// come back from the pool dirty (every element is written once).
    pub fn pad(&self, pads: &[(usize, usize)]) -> Tensor {
        assert_eq!(pads.len(), self.rank(), "pad spec rank mismatch");
        if pads.iter().all(|&(b, a)| b == 0 && a == 0) {
            return self.clone();
        }
        let out_shape: Vec<usize> =
            self.shape.iter().zip(pads).map(|(&d, &(b, a))| d + b + a).collect();
        let mut out = mem::take_uninit(numel(&out_shape));
        // Trailing unpadded axes collapse into one contiguous run.
        let mut tail = self.rank();
        while tail > 0 && pads[tail - 1] == (0, 0) {
            tail -= 1;
        }
        let run: usize = self.shape[tail..].iter().product();
        let in_strides = strides_for(&self.shape);
        let out_strides = strides_for(&out_shape);
        Tensor::pad_rec(
            0,
            tail,
            run,
            &self.data,
            &mut out,
            &self.shape,
            pads,
            &in_strides,
            &out_strides,
        );
        Tensor::from_vec(out, &out_shape)
    }

    /// See [`Tensor::pad`]. Descends one axis per level; at each level
    /// the before/after padding is a contiguous zero fill and the body
    /// recurses, bottoming out in a bulk copy of the collapsed
    /// unpadded-suffix run. Every output element is written exactly
    /// once, so the destination may start as recycled garbage.
    #[allow(clippy::too_many_arguments)]
    fn pad_rec(
        axis: usize,
        tail: usize,
        run: usize,
        src: &[f32],
        dst: &mut [f32],
        shape: &[usize],
        pads: &[(usize, usize)],
        in_strides: &[usize],
        out_strides: &[usize],
    ) {
        if axis == tail {
            dst[..run].copy_from_slice(&src[..run]);
            return;
        }
        let (b, a) = pads[axis];
        let d = shape[axis];
        let os = out_strides[axis];
        let is = in_strides[axis];
        dst[..b * os].fill(0.0);
        if axis + 1 == tail {
            // Innermost padded axis: the whole interior is one
            // contiguous input block (the suffix axes are unpadded, so
            // `os == run` and `is == run`), no need to recurse per row.
            dst[b * os..(b + d) * os].copy_from_slice(&src[..d * is]);
            dst[(b + d) * os..(b + d + a) * os].fill(0.0);
            return;
        }
        for j in 0..d {
            Tensor::pad_rec(
                axis + 1,
                tail,
                run,
                &src[j * is..],
                &mut dst[(b + j) * os..],
                shape,
                pads,
                in_strides,
                out_strides,
            );
        }
        dst[(b + d) * os..(b + d + a) * os].fill(0.0);
    }

    /// Inverse of [`Tensor::pad`]: crops `(before, after)` from each axis.
    pub fn unpad(&self, pads: &[(usize, usize)]) -> Tensor {
        assert_eq!(pads.len(), self.rank(), "unpad spec rank mismatch");
        let mut t = self.clone();
        for (axis, &(b, a)) in pads.iter().enumerate() {
            if b == 0 && a == 0 {
                continue;
            }
            let d = t.shape[axis];
            t = t.narrow(axis, b, d - b - a);
        }
        t
    }

    /// Selects rows of axis 0 by index (gather). Indices may repeat.
    pub fn index_select0(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "index_select0 requires rank >= 1");
        let inner: usize = self.shape[1..].iter().product();
        let mut out = mem::take_capacity(indices.len() * inner);
        for &i in indices {
            assert!(i < self.shape[0], "index {i} out of bounds for axis 0 size {}", self.shape[0]);
            out.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor::from_vec(out, &shape)
    }

    // ------------------------------------------------------------------
    // Whole-tensor statistics (used heavily by data prep / metrics)
    // ------------------------------------------------------------------

    /// Sum of all elements. Sequential left-to-right by default; the
    /// 8-accumulator SIMD fold runs only under `TRAFFIC_SIMD_REDUCE=1`
    /// (association order changes — see `simd` module docs).
    pub fn sum_all(&self) -> f32 {
        simd::sum(&self.data)
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Population standard deviation of all elements.
    pub fn std_all(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean_all();
        let var = self.data.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.len() as f32;
        var.sqrt()
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::arange(3).as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn broadcast_add() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_col() {
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = t(&[10.0, 20.0, 30.0], &[1, 3]);
        let c = a.mul(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn permute_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.t();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // permute rank-3
        let b = Tensor::arange(24).reshape(&[2, 3, 4]);
        let bp = b.permute(&[2, 0, 1]);
        assert_eq!(bp.shape(), &[4, 2, 3]);
        assert_eq!(bp.at(&[1, 1, 2]), b.at(&[1, 2, 1]));
    }

    #[test]
    fn narrow_and_concat_roundtrip() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p0 = a.narrow(1, 0, 1);
        let p1 = a.narrow(1, 1, 2);
        let back = Tensor::concat(&[&p0, &p1], 1);
        assert_eq!(back, a);
    }

    #[test]
    fn pad_unpad_roundtrip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let p = a.pad(&[(1, 0), (2, 1)]);
        assert_eq!(p.shape(), &[3, 6]);
        assert_eq!(p.at(&[0, 0]), 0.0);
        assert_eq!(p.at(&[1, 2]), 0.0 + a.at(&[0, 0]));
        assert_eq!(p.unpad(&[(1, 0), (2, 1)]), a);
    }

    #[test]
    fn index_select_rows() {
        let a = Tensor::arange(6).reshape(&[3, 2]);
        let s = a.index_select0(&[2, 0, 2]);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn stats() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(a.sum_all(), 10.0);
        assert_eq!(a.mean_all(), 2.5);
        assert!((a.std_all() - 1.118034).abs() < 1e-5);
        assert_eq!(a.min_all(), 1.0);
        assert_eq!(a.max_all(), 4.0);
        assert!(!a.has_non_finite());
        assert!(t(&[f32::NAN], &[1]).has_non_finite());
    }

    #[test]
    fn copy_on_write() {
        let a = Tensor::ones(&[3]);
        let mut b = a.clone();
        b.make_mut()[0] = 9.0;
        assert_eq!(a.as_slice(), &[1.0, 1.0, 1.0]);
        assert_eq!(b.as_slice(), &[9.0, 1.0, 1.0]);
    }

    #[test]
    fn inplace_matches_allocating() {
        let a = t(&[1.0, -2.0, 3.0, -4.0], &[4]);
        let b = t(&[0.5, 0.25, -1.0, 2.0], &[4]);
        let mut m = a.clone();
        m.map_inplace(|v| v * 2.0 + 1.0);
        assert_eq!(m, a.map(|v| v * 2.0 + 1.0));
        let mut z = a.clone();
        z.zip_map_assign(&b, |x, y| x * y + 1.0);
        assert_eq!(z, a.zip_map(&b, |x, y| x * y + 1.0));
        let mut s = a.clone();
        s.add_assign(&b);
        assert_eq!(s, a.add(&b));
        let mut axpy = a.clone();
        axpy.scaled_add_assign(-0.5, &b);
        assert_eq!(axpy, a.zip_map(&b, |x, y| x + (-0.5) * y));
        let mut tern = a.clone();
        tern.zip_map2_assign(&b, &s, |x, y, z| x + y * z);
        for i in 0..4 {
            assert_eq!(tern.as_slice()[i], a.as_slice()[i] + b.as_slice()[i] * s.as_slice()[i]);
        }
    }

    #[test]
    fn inplace_cow_preserves_shared_buffer() {
        let a = Tensor::ones(&[4]);
        let mut b = a.clone(); // shares the buffer
        b.map_inplace(|v| v + 1.0);
        assert_eq!(a.as_slice(), &[1.0; 4], "shared source must be untouched");
        assert_eq!(b.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn inplace_self_aliased_operand() {
        let mut a = t(&[1.0, 2.0, 3.0], &[3]);
        let alias = a.clone();
        a.add_assign(&alias); // COW kicks in; reads stay consistent
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(alias.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
