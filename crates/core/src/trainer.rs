//! Training and prediction loops shared by every experiment.
//!
//! Mirrors the paper's setup (§V): Adam, masked MAE loss on z-scored
//! values, gradient clipping, mini-batches; scheduled sampling for the
//! seq2seq models with an inverse-sigmoid decay of the teacher-forcing
//! probability.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_data::{batches, PreparedData, WindowedData, ZScore};
use traffic_models::{train_horizon, TrafficModel, TrainCtx};
use traffic_nn::loss::{masked_mae, null_mask};
use traffic_nn::Adam;
use traffic_obs::{counter, emit_with, gauge, histogram, span, Event};
use traffic_tensor::{Tape, Tensor};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64; smaller fits CPU budgets).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// RNG seed for shuffling / dropout / scheduled sampling.
    pub seed: u64,
    /// Optional cap on batches per epoch (CPU budget knob). `None` = all.
    pub max_batches_per_epoch: Option<usize>,
    /// Scheduled-sampling decay constant (larger = slower decay).
    pub teacher_decay: f32,
    /// Early stopping: abort after this many epochs without validation
    /// improvement and restore the best weights. `None` disables it (and
    /// skips validation entirely).
    pub early_stop_patience: Option<usize>,
    /// Cap on validation batches per epoch when early stopping is on.
    pub max_val_batches: Option<usize>,
    /// Optional step-decay LR schedule `(gamma, every_epochs)` — the
    /// original DCRNN/Graph-WaveNet training recipes decay the lr.
    pub lr_decay: Option<(f32, usize)>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 3e-3,
            grad_clip: 5.0,
            seed: 7,
            max_batches_per_epoch: None,
            teacher_decay: 60.0,
            early_stop_patience: None,
            max_val_batches: Some(8),
            lr_decay: None,
        }
    }
}

/// What the trainer measured.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean masked-MAE training loss per epoch (normalised scale).
    pub epoch_losses: Vec<f32>,
    /// Validation losses per epoch (empty unless early stopping is on).
    pub val_losses: Vec<f32>,
    /// Wall-clock time per epoch.
    pub epoch_times: Vec<Duration>,
    /// Mean time per epoch.
    pub mean_epoch_time: Duration,
    /// Epoch whose weights were kept (last epoch without early stopping).
    pub best_epoch: usize,
}

/// Mean masked-MAE loss of a model over a split (normalised scale),
/// without touching gradients.
pub fn validation_loss(
    model: &dyn TrafficModel,
    data: &WindowedData,
    horizon: usize,
    batch_size: usize,
    max_batches: Option<usize>,
) -> f32 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    // One tape for the whole split: `reset` keeps the node list's
    // capacity and recycles node buffers into the traffic-mem pool.
    let mut tape = Tape::new();
    for batch in batches(data, batch_size, None::<&mut StdRng>) {
        if let Some(cap) = max_batches {
            if count >= cap {
                break;
            }
        }
        tape.reset();
        let x = tape.constant(batch.x.clone());
        let pred = model.forward(&tape, x, None);
        let pred = pred.narrow(1, 0, horizon);
        let y_norm = batch.y_norm.narrow(1, 0, horizon);
        let y_raw = batch.y_raw.narrow(1, 0, horizon);
        let mask = null_mask(&y_raw, 1e-3);
        let loss = masked_mae(&tape, pred, &y_norm, &mask).value().item();
        if loss.is_finite() {
            sum += loss as f64;
            count += 1;
        }
    }
    if count == 0 {
        f32::NAN
    } else {
        (sum / count as f64) as f32
    }
}

/// Inverse-sigmoid scheduled-sampling probability after `step` batches.
pub fn teacher_probability(step: usize, decay: f32) -> f32 {
    decay / (decay + (step as f32 / decay).exp())
}

/// Trains `model` on the prepared dataset.
pub fn train(model: &dyn TrafficModel, data: &PreparedData, cfg: &TrainConfig) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let horizon = train_horizon(model.name(), data.t_out);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut val_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_times = Vec::with_capacity(cfg.epochs);
    let mut global_step = 0usize;
    let mut best: Option<(f32, usize, Vec<Tensor>)> = None;
    let mut stale = 0usize;
    // One tape for the whole run; `reset` per batch retains capacity and
    // returns the previous batch's node buffers to the traffic-mem pool.
    let mut tape = Tape::new();
    for _epoch in 0..cfg.epochs {
        if let Some((gamma, every)) = cfg.lr_decay {
            let schedule = traffic_nn::StepDecay::new(cfg.lr, gamma, every);
            opt.set_lr(schedule.lr_at(_epoch));
        }
        let epoch_span = span!("train/epoch", model = model.name(), epoch = _epoch as u64);
        let mut loss_sum = 0.0f64;
        let mut batches_run = 0usize;
        let mut samples_seen = 0usize;
        let mut shuffle_rng =
            StdRng::seed_from_u64(cfg.seed ^ (_epoch as u64).wrapping_mul(0x9e37));
        for batch in batches(&data.train, cfg.batch_size, Some(&mut shuffle_rng)) {
            if let Some(cap) = cfg.max_batches_per_epoch {
                if batches_run >= cap {
                    break;
                }
            }
            let batch_span = span!("train/batch");
            let batch_samples = batch.x.shape()[0];
            tape.reset();
            let x = tape.constant(batch.x.clone());
            let y_norm = batch.y_norm.narrow(1, 0, horizon);
            let y_raw = batch.y_raw.narrow(1, 0, horizon);
            let teacher_prob = teacher_probability(global_step, cfg.teacher_decay);
            let mut tctx = TrainCtx { rng: &mut rng, teacher: Some(&batch.y_norm), teacher_prob };
            // Phase-level profile ops: the per-kernel ops recorded inside
            // (gemm/…, bwd/…) nest under these in the Chrome trace.
            let pred = {
                let _prof = traffic_obs::profile::op("train", "forward");
                model.forward(&tape, x, Some(&mut tctx))
            };
            let mask = null_mask(&y_raw, 1e-3);
            let loss = masked_mae(&tape, pred, &y_norm, &mask);
            let loss_val = loss.value().item();
            if loss_val.is_finite() {
                let grads = {
                    let _prof = traffic_obs::profile::op("train", "backward");
                    tape.backward(loss)
                };
                let _prof = traffic_obs::profile::op("train", "optim");
                model.store().zero_grads();
                model.store().capture_grads(&tape, &grads);
                let grad_norm = model.store().clip_grad_norm(cfg.grad_clip);
                gauge("train.grad_norm").set(grad_norm as f64);
                opt.step(model.store());
                drop(_prof);
                loss_sum += loss_val as f64;
            } else {
                counter("train.nonfinite_batches").inc();
            }
            counter("train.batches").inc();
            histogram("train.batch_s").record_duration(batch_span.finish());
            batches_run += 1;
            samples_seen += batch_samples;
            global_step += 1;
        }
        let epoch_loss = (loss_sum / batches_run.max(1) as f64) as f32;
        epoch_losses.push(epoch_loss);
        let epoch_dur = epoch_span.finish();
        epoch_times.push(epoch_dur);
        histogram("train.epoch_s").record_duration(epoch_dur);
        // Histogram (not just a console-event field) so the manifest's
        // metrics summary carries throughput alongside predict.window_s.
        if epoch_dur.as_secs_f64() > 0.0 {
            histogram("train.samples_per_sec")
                .record(samples_seen as f64 / epoch_dur.as_secs_f64());
        }
        // Publish mem/pool_hit_rate & friends once per epoch.
        traffic_tensor::mem::refresh_gauges();
        let mut stop = false;
        if let Some(patience) = cfg.early_stop_patience {
            let vl = if data.val.is_empty() {
                *epoch_losses.last().expect("at least one epoch")
            } else {
                let val_span = span!("train/validate", model = model.name(), epoch = _epoch as u64);
                let vl =
                    validation_loss(model, &data.val, horizon, cfg.batch_size, cfg.max_val_batches);
                val_span.finish();
                vl
            };
            val_losses.push(vl);
            let improved = best.as_ref().is_none_or(|(b, _, _)| vl < *b);
            if improved {
                best = Some((vl, _epoch, model.store().snapshot()));
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    stop = true;
                }
            }
        }
        // One structured event per epoch; the closure means no Event is
        // built when no sink is installed.
        emit_with(|| {
            let secs = epoch_dur.as_secs_f64();
            let mut ev = Event::new("epoch")
                .with("model", model.name())
                .with("epoch", _epoch as u64)
                .with("loss", epoch_loss)
                .with("epoch_s", secs)
                .with("teacher_prob", teacher_probability(global_step, cfg.teacher_decay))
                .with("batches", batches_run as u64);
            if secs > 0.0 {
                ev = ev.with("samples_per_sec", samples_seen as f64 / secs);
            }
            if let Some(vl) = val_losses.last() {
                ev = ev.with("val_loss", *vl);
            }
            ev
        });
        if stop {
            break;
        }
    }
    let best_epoch = match best {
        Some((_, epoch, snapshot)) => {
            model.store().restore(&snapshot);
            epoch
        }
        None => epoch_losses.len().saturating_sub(1),
    };
    let mean_epoch_time = if epoch_times.is_empty() {
        Duration::ZERO
    } else {
        epoch_times.iter().sum::<Duration>() / epoch_times.len() as u32
    };
    TrainReport { epoch_losses, val_losses, epoch_times, mean_epoch_time, best_epoch }
}

/// Runs the model over a windowed split and returns predictions on the
/// **original** scale, `[S, T_out, N]`.
pub fn predict(
    model: &dyn TrafficModel,
    data: &WindowedData,
    scaler: &ZScore,
    batch_size: usize,
) -> Tensor {
    let mut parts: Vec<Tensor> = Vec::new();
    let mut tape = Tape::new();
    for batch in batches(data, batch_size, None::<&mut StdRng>) {
        tape.reset();
        let x = tape.constant(batch.x.clone());
        let pred = model.forward(&tape, x, None);
        let mut denorm = pred.value();
        scaler.inverse_owned(&mut denorm);
        parts.push(denorm);
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat(&refs, 0)
}

/// Convenience: predict + wall-clock (Table III inference time). The
/// measurement is a `predict` span, so it also lands in the span
/// registry and any installed sink.
pub fn timed_predict(
    model: &dyn TrafficModel,
    data: &WindowedData,
    scaler: &ZScore,
    batch_size: usize,
) -> (Tensor, Duration) {
    let guard = span!("predict", model = model.name(), windows = data.len() as u64);
    let pred = predict(model, data, scaler, batch_size);
    let dur = guard.finish();
    histogram("predict.window_s").record(dur.as_secs_f64() / data.len().max(1) as f64);
    (pred, dur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_data::{prepare, simulate, SimConfig, Task};
    use traffic_models::{build_model, GraphContext};

    fn tiny_setup() -> (PreparedData, GraphContext) {
        let ds = simulate(&SimConfig::new("t", Task::Speed, 6, 4));
        let prepared = prepare(&ds, 12, 12);
        let ctx = GraphContext::from_network(&ds.network, 4);
        (prepared, ctx)
    }

    #[test]
    fn teacher_probability_decays() {
        assert!(teacher_probability(0, 60.0) > 0.95);
        assert!(teacher_probability(500, 60.0) < teacher_probability(10, 60.0));
    }

    #[test]
    fn training_reduces_loss_graph_wavenet() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let model = build_model("Graph-WaveNet", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            max_batches_per_epoch: Some(10),
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss should drop: {:?}",
            report.epoch_losses
        );
        assert!(!model.store().has_non_finite());
    }

    #[test]
    fn predict_shapes_and_scale() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let model = build_model("STSGCN", &ctx, &mut rng);
        let pred = predict(model.as_ref(), &data.test, &data.scaler, 8);
        assert_eq!(pred.shape()[0], data.test.len());
        assert_eq!(pred.shape()[1], 12);
        assert_eq!(pred.shape()[2], 6);
        // predictions should land near the physical speed range after
        // denormalisation (untrained, so roughly near the mean)
        assert!(pred.mean_all() > 0.0 && pred.mean_all() < 100.0);
    }

    #[test]
    fn timed_predict_nonzero() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let model = build_model("STG2Seq", &ctx, &mut rng);
        let (_pred, dur) = timed_predict(model.as_ref(), &data.test, &data.scaler, 8);
        assert!(dur > Duration::ZERO);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(5);
        let model = build_model("STG2Seq", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            max_batches_per_epoch: Some(4),
            early_stop_patience: Some(1),
            max_val_batches: Some(2),
            lr: 0.1, // aggressive lr to force val-loss oscillation
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert_eq!(report.val_losses.len(), report.epoch_losses.len());
        // best epoch must be a minimiser of the recorded val losses
        let best = report.val_losses[report.best_epoch];
        assert!(report.val_losses.iter().all(|&v| best <= v + 1e-6));
        // with patience 1, training stops one epoch after the best
        assert!(report.epoch_losses.len() <= report.best_epoch + 2);
    }

    #[test]
    fn lr_decay_schedule_is_applied() {
        // With an aggressive decay the later epochs barely move the loss,
        // so total improvement is smaller than without decay.
        let (data, ctx) = tiny_setup();
        let run = |decay: Option<(f32, usize)>| {
            let mut rng = StdRng::seed_from_u64(8);
            let model = build_model("STG2Seq", &ctx, &mut rng);
            let cfg = TrainConfig {
                epochs: 4,
                batch_size: 8,
                max_batches_per_epoch: Some(6),
                lr_decay: decay,
                ..Default::default()
            };
            let report = train(model.as_ref(), &data, &cfg);
            *report.epoch_losses.last().unwrap()
        };
        let frozen = run(Some((1e-6, 1))); // lr collapses after epoch 0
        let normal = run(None);
        assert!(normal < frozen, "decayed-lr run should improve less: {normal} vs {frozen}");
    }

    #[test]
    fn validation_loss_finite() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(6);
        let model = build_model("GMAN", &ctx, &mut rng);
        let vl = validation_loss(model.as_ref(), &data.val, 12, 8, Some(2));
        assert!(vl.is_finite() && vl > 0.0);
    }

    #[test]
    fn stgcn_trains_on_single_step() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(4);
        let model = build_model("STGCN", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_batches_per_epoch: Some(6),
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
