//! Normalisation layers.

use traffic_tensor::{Tape, Tensor, Var};

use crate::param::{Param, ParamStore};

/// Layer normalisation over the last axis, with learned scale and shift.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    features: usize,
    eps: f32,
}

impl LayerNorm {
    /// New layer with `gamma = 1`, `beta = 0`.
    pub fn new(store: &mut ParamStore, prefix: &str, features: usize) -> Self {
        let gamma = store.add(format!("{prefix}.gamma"), Tensor::ones(&[features]));
        let beta = store.add(format!("{prefix}.beta"), Tensor::zeros(&[features]));
        LayerNorm { gamma, beta, features, eps: 1e-5 }
    }

    /// Normalises the last axis of `x` to zero mean / unit variance, then
    /// applies the learned affine transform.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let last = shape.len() - 1;
        assert_eq!(shape[last], self.features, "LayerNorm feature mismatch");
        let mean = x.mean_axes(&[last], true);
        let centered = x.sub(&mean);
        let var = centered.powf(2.0).mean_axes(&[last], true);
        let norm = centered.div(&var.add_scalar(self.eps).sqrt());
        norm.mul(&self.gamma.var(tape)).add(&self.beta.var(tape))
    }
}

/// Batch normalisation over the channel axis of `[B, C, N, T]` tensors.
///
/// Training mode uses batch statistics and updates running estimates; eval
/// mode uses the running estimates.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: std::cell::RefCell<Tensor>,
    running_var: std::cell::RefCell<Tensor>,
    channels: usize,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// New layer with unit scale, zero shift, zero running mean, unit
    /// running variance.
    pub fn new(store: &mut ParamStore, prefix: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: store.add(format!("{prefix}.gamma"), Tensor::ones(&[channels])),
            beta: store.add(format!("{prefix}.beta"), Tensor::zeros(&[channels])),
            running_mean: std::cell::RefCell::new(Tensor::zeros(&[channels])),
            running_var: std::cell::RefCell::new(Tensor::ones(&[channels])),
            channels,
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Forward over `[B, C, N, T]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, training: bool) -> Var<'t> {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [B, C, N, T]");
        assert_eq!(shape[1], self.channels, "BatchNorm2d channel mismatch");
        let c = self.channels;
        let (mean, var) = if training {
            let m = x.mean_axes(&[0, 2, 3], true); // [1, C, 1, 1]
            let v = x.sub(&m).powf(2.0).mean_axes(&[0, 2, 3], true);
            // Update running stats from the forward values.
            let mv = m.value().reshape(&[c]);
            let vv = v.value().reshape(&[c]);
            {
                let mut rm = self.running_mean.borrow_mut();
                *rm = rm.mul_scalar(1.0 - self.momentum).add(&mv.mul_scalar(self.momentum));
                let mut rv = self.running_var.borrow_mut();
                *rv = rv.mul_scalar(1.0 - self.momentum).add(&vv.mul_scalar(self.momentum));
            }
            (m, v)
        } else {
            let m = tape.constant(self.running_mean.borrow().reshape(&[1, c, 1, 1]));
            let v = tape.constant(self.running_var.borrow().reshape(&[1, c, 1, 1]));
            (m, v)
        };
        let norm = x.sub(&mean).div(&var.add_scalar(self.eps).sqrt());
        let g = self.gamma.var(tape).reshape(&[1, c, 1, 1]);
        let b = self.beta.var(tape).reshape(&[1, c, 1, 1]);
        norm.mul(&g).add(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_tensor::Tape;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let tape = Tape::new();
        let x = tape
            .constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 0.0, -10.0, 4.0], &[2, 4]));
        let y = ln.forward(&tape, x).value();
        for r in 0..2 {
            let row: Vec<f32> = (0..4).map(|c| y.at(&[r, c])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_grads() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0, 5.0, -2.0], &[1, 3]));
        let grads = tape.backward(ln.forward(&tape, x).powf(2.0).sum_all());
        store.capture_grads(&tape, &grads);
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn batchnorm_train_normalises_channels() {
        let mut store = ParamStore::new();
        let bn = BatchNorm2d::new(&mut store, "bn", 2);
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[2, 2, 2, 2]));
        let y = bn.forward(&tape, x, true).value();
        // per-channel mean ≈ 0
        let ym = y.mean_axes(&[0, 2, 3], false);
        assert!(ym.as_slice().iter().all(|v| v.abs() < 1e-4));
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let bn = BatchNorm2d::new(&mut store, "bn", 1);
        // Without any training step, running stats are (0, 1): eval is identity.
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![5.0, -3.0], &[2, 1, 1, 1]));
        let y = bn.forward(&tape, x, false).value();
        assert!((y.at(&[0, 0, 0, 0]) - 5.0).abs() < 1e-3);
        assert!((y.at(&[1, 0, 0, 0]) + 3.0).abs() < 1e-3);
    }
}
