//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of an output type from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
