//! End-to-end profiling over real training steps: for each paper model,
//! a profiled smoke-scale epoch must produce a flame table dominated by
//! a handful of hot ops and a Chrome trace the bundled parser accepts.
//!
//! One `#[test]` only: the profiler is process-global state and cargo
//! runs tests within a binary concurrently.

use traffic_core::{prepare_experiment, train_model, ExperimentScale};
use traffic_obs::profile;

#[test]
fn profiled_training_concentrates_time_and_exports_valid_traces() {
    let scale = ExperimentScale::smoke();
    let exp = prepare_experiment("METR-LA", &scale, 11);

    for model_name in ["STGCN", "Graph-WaveNet"] {
        profile::clear();
        profile::start();
        let (_model, report) = train_model(model_name, &exp, &scale, 7);
        profile::stop();
        assert!(!report.epoch_losses.is_empty(), "{model_name} must train");

        let stats = profile::flame_table();
        assert!(
            stats.len() >= 5,
            "{model_name}: expected a rich op mix, got {} distinct ops",
            stats.len()
        );
        // The table is sorted by self time: the top five ops must cover
        // the majority of where the step actually went.
        let total: u64 = stats.iter().map(|s| s.self_ns).sum();
        let top5: u64 = stats.iter().take(5).map(|s| s.self_ns).sum();
        assert!(
            top5 * 2 > total,
            "{model_name}: top-5 ops cover {top5} of {total} ns — profile is too flat"
        );
        // Training must exercise the forward, backward, and kernel hooks.
        for expect in ["train/forward", "train/backward", "bwd/", "gemm/"] {
            assert!(
                stats.iter().any(|s| format!("{}/{}", s.cat, s.name).starts_with(expect)),
                "{model_name}: no `{expect}*` op in flame table"
            );
        }

        let trace = profile::chrome_trace();
        let doc = traffic_obs::json::parse(&trace)
            .unwrap_or_else(|e| panic!("{model_name}: chrome trace must parse: {e:?}"));
        match doc.get("traceEvents") {
            Some(traffic_obs::json::Json::Arr(evs)) => {
                assert!(evs.len() > stats.len(), "{model_name}: trace has per-op events")
            }
            other => panic!("{model_name}: traceEvents must be an array, got {other:?}"),
        }
    }
    profile::clear();
}
