//! ASTGCN (Guo et al., AAAI 2019): attention-based spatial-temporal graph
//! convolutional network — the *recent* component, matching the paper's
//! `T' = 12` setup. Each block applies learned temporal attention, learned
//! spatial attention modulating a Chebyshev graph convolution, a temporal
//! convolution, and a residual connection; a final projection emits all 12
//! horizons at once.

use rand::rngs::StdRng;
use traffic_nn::{Conv2d, Linear, ParamStore, TemporalPadding};
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{to_conv_layout, GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// ASTGCN hyper-parameters.
#[derive(Debug, Clone)]
pub struct AstgcnConfig {
    /// Feature width inside blocks.
    pub channels: usize,
    /// Chebyshev order.
    pub cheb_k: usize,
    /// Number of ST blocks.
    pub blocks: usize,
    /// Attention projection width.
    pub attn_dim: usize,
    /// Horizons / features.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for AstgcnConfig {
    fn default() -> Self {
        AstgcnConfig {
            channels: 16,
            cheb_k: 3,
            blocks: 2,
            attn_dim: 8,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

struct AstBlock {
    /// Temporal attention projections (queries/keys over flattened N·C).
    t_q: Linear,
    t_k: Linear,
    /// Spatial attention projections (queries/keys over flattened T·C).
    s_q: Linear,
    s_k: Linear,
    /// Chebyshev weights `[K, F_in, F_out]` applied with attention-scaled
    /// polynomials.
    cheb_w: traffic_nn::Param,
    /// Temporal convolution.
    t_conv: Conv2d,
    /// Residual 1×1 conv.
    res_conv: Conv2d,
    f_in: usize,
    f_out: usize,
}

/// The ASTGCN model (recent component).
pub struct Astgcn {
    store: ParamStore,
    blocks: Vec<AstBlock>,
    /// Chebyshev polynomial tensors `T_k(L̃)`, precomputed constants.
    cheb_polys: Vec<Tensor>,
    head: Linear,
    cfg: AstgcnConfig,
}

impl Astgcn {
    /// Builds ASTGCN for a graph context.
    pub fn new(ctx: &GraphContext, cfg: AstgcnConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let n = ctx.n;
        // Precompute Chebyshev polynomials of the scaled Laplacian.
        let mut polys = vec![Tensor::eye(n)];
        if cfg.cheb_k > 1 {
            polys.push(ctx.scaled_laplacian.clone());
        }
        for k in 2..cfg.cheb_k {
            let next =
                ctx.scaled_laplacian.matmul(&polys[k - 1]).mul_scalar(2.0).sub(&polys[k - 2]);
            polys.push(next);
        }
        let mut blocks = Vec::new();
        let mut f_in = cfg.in_features;
        for b in 0..cfg.blocks {
            let f_out = cfg.channels;
            blocks.push(AstBlock {
                t_q: Linear::new(
                    &mut store,
                    &format!("b{b}.t_q"),
                    n * f_in,
                    cfg.attn_dim,
                    false,
                    rng,
                ),
                t_k: Linear::new(
                    &mut store,
                    &format!("b{b}.t_k"),
                    n * f_in,
                    cfg.attn_dim,
                    false,
                    rng,
                ),
                s_q: Linear::new(
                    &mut store,
                    &format!("b{b}.s_q"),
                    cfg.t_in * f_in,
                    cfg.attn_dim,
                    false,
                    rng,
                ),
                s_k: Linear::new(
                    &mut store,
                    &format!("b{b}.s_k"),
                    cfg.t_in * f_in,
                    cfg.attn_dim,
                    false,
                    rng,
                ),
                cheb_w: store.add(
                    format!("b{b}.cheb_w"),
                    traffic_tensor::init::xavier_uniform(&[cfg.cheb_k, f_in, f_out], rng),
                ),
                t_conv: Conv2d::new(
                    &mut store,
                    &format!("b{b}.t_conv"),
                    f_out,
                    f_out,
                    (1, 3),
                    (1, 1),
                    TemporalPadding::Same,
                    true,
                    rng,
                ),
                res_conv: Conv2d::new(
                    &mut store,
                    &format!("b{b}.res"),
                    f_in,
                    f_out,
                    (1, 1),
                    (1, 1),
                    TemporalPadding::Valid,
                    true,
                    rng,
                ),
                f_in,
                f_out,
            });
            f_in = cfg.channels;
        }
        let head = Linear::new(&mut store, "head", cfg.t_in * cfg.channels, cfg.t_out, true, rng);
        Astgcn { store, blocks, cheb_polys: polys, head, cfg }
    }

    /// One ST block on `[B, T, N, F]`.
    fn block_forward<'t>(&self, tape: &'t Tape, block: &AstBlock, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n, f) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(f, block.f_in);
        // ---- temporal attention over the T axis ----
        let xt = x.reshape(&[b, t, n * f]);
        let q = block.t_q.forward(tape, xt);
        let k = block.t_k.forward(tape, xt);
        let scale = 1.0 / (self.cfg.attn_dim as f32).sqrt();
        let e = q.matmul(&k.t()).mul_scalar(scale).softmax(2); // [B, T, T]
        let x_t = e.matmul(&xt).reshape(&[b, t, n, f]);
        // ---- spatial attention over the N axis ----
        let xn = x_t.permute(&[0, 2, 1, 3]).reshape(&[b, n, t * f]);
        let sq = block.s_q.forward(tape, xn);
        let sk = block.s_k.forward(tape, xn);
        let s = sq.matmul(&sk.t()).mul_scalar(scale).softmax(2); // [B, N, N]
                                                                 // ---- Chebyshev conv with attention-modulated polynomials ----
        let w = block.cheb_w.var(tape);
        let mut out: Option<Var<'t>> = None;
        for kk in 0..self.cfg.cheb_k {
            let poly = tape.constant(self.cheb_polys[kk].reshape(&[1, n, n]));
            let mk = s.mul(&poly).reshape(&[b, 1, n, n]); // [B, 1, N, N]
            let prop = mk.matmul(&x_t); // [B, T, N, F]
            let wk = w.narrow(0, kk, 1).reshape(&[block.f_in, block.f_out]);
            let term = prop.matmul(&wk);
            out = Some(match out {
                Some(acc) => acc.add(&term),
                None => term,
            });
        }
        let spatial = out.expect("cheb_k >= 1").relu(); // [B, T, N, F_out]
                                                        // ---- temporal convolution + residual ----
        let conv_in = to_conv_layout(spatial); // [B, F, N, T]
        let conv = block.t_conv.forward(tape, conv_in);
        let res = block.res_conv.forward(tape, to_conv_layout(x));
        crate::common::from_conv_layout(conv.add(&res).relu())
    }
}

impl TrafficModel for Astgcn {
    fn name(&self) -> &'static str {
        "ASTGCN"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("ASTGCN").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t> {
        let _ = train;
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        assert_eq!(t, self.cfg.t_in);
        let mut h = x;
        for block in &self.blocks {
            h = self.block_forward(tape, block, h);
        }
        // [B, T, N, F] -> per node flatten time·features -> T_out
        let flat = h.permute(&[0, 2, 1, 3]).reshape(&[b, n, t * self.cfg.channels]);
        let y = self.head.forward(tape, flat); // [B, N, T_out]
        y.permute(&[0, 2, 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(8);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = Astgcn::new(&ctx, AstgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 6, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn cheb_polys_start_with_identity() {
        let (ctx, mut rng) = setup();
        let model = Astgcn::new(&ctx, AstgcnConfig::default(), &mut rng);
        assert_eq!(model.cheb_polys[0], Tensor::eye(6));
        assert_eq!(model.cheb_polys[1], ctx.scaled_laplacian);
        assert_eq!(model.cheb_polys.len(), 3);
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Astgcn::new(&ctx, AstgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(traffic_tensor::init::uniform(&[1, 12, 6, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn single_block_variant() {
        let (ctx, mut rng) = setup();
        let cfg = AstgcnConfig { blocks: 1, ..Default::default() };
        let model = Astgcn::new(&ctx, cfg, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
        assert_eq!(model.forward(&tape, x, None).shape(), vec![1, 12, 6]);
    }
}
