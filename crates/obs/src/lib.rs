//! # traffic-obs
//!
//! Zero-dependency observability layer for the whole train/eval
//! pipeline: hierarchical **spans** (wall-clock timing with RAII
//! guards and a thread-safe global registry), **metrics** (counters,
//! gauges, fixed-bucket histograms with quantile readout), **sinks**
//! (a human console sink with live loss sparklines, and a JSONL event
//! sink writing per-run manifests under `reports/runs/<name>.jsonl`),
//! and an op-level **profiler** ([`profile`]) exporting flame tables
//! and Chrome `trace_event` files.
//!
//! Design rules:
//!
//! - **Spans always time.** Table III rows are sourced from span
//!   durations, so `span!(..)` measures and registers even when no
//!   sink is installed. Registration is a bounded ring buffer — the
//!   registry can never grow without bound.
//! - **Events are free when disabled.** [`emit_with`] does not even
//!   build the [`Event`] unless a sink is listening, so an
//!   uninstrumented-looking run stays within noise of the
//!   pre-telemetry baseline.
//! - **Metrics are atomics.** Counter/gauge/histogram updates are
//!   lock-free after the first name lookup; hot loops hold a
//!   `&'static` handle.
//!
//! ```
//! use traffic_obs as obs;
//! use traffic_obs::span;
//!
//! let marker = obs::span_marker();
//! {
//!     let _epoch = span!("train/epoch", epoch = 0);
//!     obs::histogram("train/batch_s").record(0.012);
//! }
//! let spans = obs::spans_since(marker);
//! assert_eq!(spans[0].name, "train/epoch");
//! ```

pub mod event;
pub mod faults;
pub mod html;
pub mod json;
pub mod live;
pub mod metrics;
pub mod profile;
pub mod run;
pub mod scope;
pub mod sink;
pub mod span;
pub mod store;
pub mod sysmon;
pub mod watch;

pub use event::{Event, IntoValue, Value};
pub use live::{heartbeat, LiveServer, Phase, PhaseGuard};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
};
pub use run::{Run, RunBuilder};
pub use scope::{current_cell, CellScope};
pub use sink::{add_sink, clear_sinks, enabled, remove_sink, ConsoleSink, JsonlSink, Sink};
pub use span::{
    current_thread_id, span_marker, span_stats, span_stats_local, spans_since, SpanGuard,
    SpanRecord, SpanStats,
};
pub use store::{diff, Direction, RunDiff, RunStore, RunSummary};
pub use sysmon::SysSampler;

use std::sync::OnceLock;
use std::time::Instant;

/// Emits an event to every installed sink (no-op when none installed).
pub fn emit(event: &Event) {
    sink::dispatch(event);
}

/// Builds and emits an event only when a sink is listening — use on hot
/// paths so disabled telemetry costs one atomic load.
pub fn emit_with(f: impl FnOnce() -> Event) {
    if enabled() {
        sink::dispatch(&f());
    }
}

/// The process-wide telemetry clock: one `Instant` shared by event
/// timestamps and the op profiler, so manifest `ts_ms` values and
/// trace-event timestamps line up.
fn clock() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Milliseconds since the process-wide telemetry clock started.
pub fn elapsed_ms() -> f64 {
    clock().elapsed().as_secs_f64() * 1e3
}

/// Nanoseconds since the process-wide telemetry clock started.
pub fn elapsed_ns() -> u64 {
    clock().elapsed().as_nanos() as u64
}

/// A crude unicode sparkline for terminal figures and live loss curves.
pub fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / range) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert!(sparkline(&[5.0, 5.0]).chars().all(|c| c == '▁'));
    }

    #[test]
    fn elapsed_is_monotone() {
        let a = elapsed_ms();
        let b = elapsed_ms();
        assert!(b >= a);
    }
}
