//! Failure-injection stress test: train a model on clean traffic, then
//! inject a controlled incident into the test period and measure how much
//! the prediction error spikes around it — a controlled, single-event
//! version of the paper's difficult-interval analysis.
//!
//! ```text
//! cargo run --release --example incident_stress [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{predict, sparkline, train, TrainConfig};
use traffic_suite::data::{inject_incident, prepare, simulate, SimConfig, Task};
use traffic_suite::metrics::evaluate;
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    // Clean world: no random incidents, no missing data.
    let mut cfg = SimConfig::new("stress", Task::Speed, 10, 8);
    cfg.incident_rate = 0.0;
    cfg.missing_rate = 0.0;
    let clean = simulate(&cfg);
    let data = prepare(&clean, 12, 12);
    let ctx = GraphContext::from_network(&clean.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let model = build_model("Graph-WaveNet", &ctx, &mut rng);
    let tc = TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        max_batches_per_epoch: scale.max_train_batches,
        ..Default::default()
    };
    println!("training Graph-WaveNet on incident-free data…");
    train(model.as_ref(), &data, &tc);

    // Stress world: same data plus one injected incident in the test range.
    let node = 4;
    let split = traffic_suite::data::paper_split(clean.num_steps());
    let incident_start = split.test.start + 60;
    let mut stressed = clean.clone();
    inject_incident(&mut stressed, node, incident_start, 4, 10, 0.9);
    let stressed_data = prepare(&stressed, 12, 12);

    let eval_windows = |d: &traffic_suite::data::PreparedData| {
        let test = d.test.truncate(scale.max_test_samples.unwrap_or(usize::MAX));
        let pred = predict(model.as_ref(), &test, &d.scaler, scale.batch_size);
        (test, pred)
    };
    let (clean_test, clean_pred) = eval_windows(&data);
    let (stress_test, stress_pred) = eval_windows(&stressed_data);

    let m_clean = evaluate(&clean_pred, &clean_test.y_raw, None);
    let m_stress = evaluate(&stress_pred, &stress_test.y_raw, None);
    println!("\noverall test MAE  clean: {:.3}   with incident: {:.3}", m_clean.mae, m_stress.mae);

    // Zoom in on the incident neighbourhood on the affected sensor.
    let rel = incident_start - stress_test.target_start[0];
    let lo = rel.saturating_sub(12);
    let hi = (rel + 36).min(stress_test.len());
    let actual: Vec<f32> = (lo..hi).map(|s| stress_test.y_raw.at(&[s, 0, node])).collect();
    let predicted: Vec<f32> = (lo..hi).map(|s| stress_pred.at(&[s, 0, node])).collect();
    let err: Vec<f32> = actual.iter().zip(&predicted).map(|(a, p)| (a - p).abs()).collect();
    println!("\nsensor {node} around the injected incident (1-step horizon):");
    println!("  actual    {}", sparkline(&actual));
    println!("  predicted {}", sparkline(&predicted));
    println!("  |error|   {}", sparkline(&err));
    let peak_err = err.iter().cloned().fold(0.0f32, f32::max);
    let base_err: f32 = err[..8.min(err.len())].iter().sum::<f32>() / 8.0_f32.min(err.len() as f32);
    println!("\npeak |error| near incident: {peak_err:.2} (baseline before: {base_err:.2})");
    println!(
        "the model tracks recurring traffic but cannot anticipate the abrupt, non-recurring drop —"
    );
    println!("the paper's central difficult-interval observation (Fig 3 B).");
}
