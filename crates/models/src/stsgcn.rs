//! STSGCN (Song et al., AAAI 2020): spatial-temporal synchronous graph
//! convolutional network. Three consecutive time slices are joined into one
//! localised spatio-temporal graph of `3N` vertices; *individual* (not
//! shared) synchronous graph-conv modules process each sliding window, and
//! individual output heads emit each horizon — the design choice behind the
//! largest parameter count in Table III.

use rand::rngs::StdRng;
use traffic_nn::{DenseGraphConv, Linear, ParamStore};
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// STSGCN hyper-parameters.
#[derive(Debug, Clone)]
pub struct StsgcnConfig {
    /// Feature width inside modules.
    pub channels: usize,
    /// Graph-conv layers per synchronous module.
    pub layers_per_module: usize,
    /// Horizons / features.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for StsgcnConfig {
    fn default() -> Self {
        StsgcnConfig { channels: 28, layers_per_module: 2, t_in: 12, t_out: 12, in_features: 2 }
    }
}

/// Builds the `3N × 3N` localised spatio-temporal adjacency: the dataset
/// graph on each diagonal block, identity links between the same sensor at
/// consecutive slices, row-normalised.
pub fn local_st_adjacency(adj: &Tensor) -> Tensor {
    let n = adj.shape()[0];
    assert_eq!(adj.shape(), &[n, n]);
    let m = 3 * n;
    let mut out = Tensor::zeros(&[m, m]);
    {
        let buf = out.make_mut();
        let a = adj.as_slice();
        for blk in 0..3 {
            let off = blk * n;
            for i in 0..n {
                for j in 0..n {
                    buf[(off + i) * m + off + j] = a[i * n + j];
                }
            }
        }
        // temporal links: slice k sensor i <-> slice k+1 sensor i
        for k in 0..2 {
            for i in 0..n {
                let u = k * n + i;
                let v = (k + 1) * n + i;
                buf[u * m + v] = 1.0;
                buf[v * m + u] = 1.0;
            }
        }
    }
    traffic_graph::row_normalize(&out)
}

/// One synchronous module: stacked graph convs on the `3N` graph with GLU
/// activations, then crop to the middle `N` vertices.
struct Stsgcm {
    convs: Vec<DenseGraphConv>,
    channels: usize,
}

impl Stsgcm {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        local_adj: &Tensor,
        layers: usize,
        f_in: usize,
        channels: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut convs = Vec::new();
        let mut fi = f_in;
        for l in 0..layers {
            convs.push(DenseGraphConv::new(
                store,
                &format!("{prefix}.conv{l}"),
                local_adj.clone(),
                fi,
                2 * channels,
                rng,
            ));
            fi = channels;
        }
        Stsgcm { convs, channels }
    }

    /// `[B, 3N, F] -> [B, N, C]` (middle slice).
    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let n3 = x.shape()[1];
        let n = n3 / 3;
        let mut h = x;
        for conv in &self.convs {
            let z = conv.forward(tape, h);
            let a = z.narrow(2, 0, self.channels);
            let g = z.narrow(2, self.channels, self.channels).sigmoid();
            h = a.mul(&g);
        }
        h.narrow(1, n, n)
    }
}

/// The STSGCN model.
pub struct Stsgcn {
    store: ParamStore,
    input_proj: Linear,
    /// One *individual* module per sliding window (t_in − 2 of them).
    modules: Vec<Stsgcm>,
    /// One individual output head per horizon.
    heads: Vec<Linear>,
    cfg: StsgcnConfig,
}

impl Stsgcn {
    /// Builds STSGCN for a graph context.
    pub fn new(ctx: &GraphContext, cfg: StsgcnConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let local = local_st_adjacency(&ctx.row_norm_adj);
        let input_proj =
            Linear::new(&mut store, "input_proj", cfg.in_features, cfg.channels, true, rng);
        let windows = cfg.t_in - 2;
        let modules = (0..windows)
            .map(|w| {
                Stsgcm::new(
                    &mut store,
                    &format!("module{w}"),
                    &local,
                    cfg.layers_per_module,
                    cfg.channels,
                    cfg.channels,
                    rng,
                )
            })
            .collect();
        let heads = (0..cfg.t_out)
            .map(|h| {
                Linear::new(&mut store, &format!("head{h}"), windows * cfg.channels, 1, true, rng)
            })
            .collect();
        Stsgcn { store, input_proj, modules, heads, cfg }
    }
}

impl TrafficModel for Stsgcn {
    fn name(&self) -> &'static str {
        "STSGCN"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("STSGCN").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t> {
        let _ = train;
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        assert_eq!(t, self.cfg.t_in);
        let h = self.input_proj.forward(tape, x).relu(); // [B, T, N, C]
                                                         // Each window w joins slices (w, w+1, w+2) into a 3N graph.
        let mut window_outs = Vec::with_capacity(self.modules.len());
        for (w, module) in self.modules.iter().enumerate() {
            let s0 = h.narrow(1, w, 1).reshape(&[b, n, self.cfg.channels]);
            let s1 = h.narrow(1, w + 1, 1).reshape(&[b, n, self.cfg.channels]);
            let s2 = h.narrow(1, w + 2, 1).reshape(&[b, n, self.cfg.channels]);
            let joined = Var::concat(&[s0, s1, s2], 1); // [B, 3N, C]
            window_outs.push(module.forward(tape, joined)); // [B, N, C]
        }
        // [B, N, windows · C]
        let agg = Var::concat(&window_outs, 2);
        let mut horizons = Vec::with_capacity(self.cfg.t_out);
        for head in &self.heads {
            horizons.push(head.forward(tape, agg).reshape(&[b, 1, n]));
        }
        Var::concat(&horizons, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let net = freeway_corridor(5, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn local_adjacency_structure() {
        let a = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[2, 2]);
        let l = local_st_adjacency(&a);
        assert_eq!(l.shape(), &[6, 6]);
        // temporal link sensor 0: slice0 (row 0) ↔ slice1 (row 2)
        assert!(l.at(&[0, 2]) > 0.0);
        assert!(l.at(&[2, 4]) > 0.0);
        // no direct slice0 ↔ slice2 link
        assert_eq!(l.at(&[0, 4]), 0.0);
        // rows stochastic
        for i in 0..6 {
            let s: f32 = (0..6).map(|j| l.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = Stsgcn::new(&ctx, StsgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 5, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 5]);
    }

    #[test]
    fn individual_modules_inflate_params() {
        // STSGCN should dwarf a single shared-module design in parameters —
        // the Table III observation.
        let (ctx, mut rng) = setup();
        let model = Stsgcn::new(&ctx, StsgcnConfig::default(), &mut rng);
        let per_module_params: usize = 2 * (12 * 24 + 24) + (12 * 24 + 24); // rough floor
        assert!(model.num_params() > 10 * per_module_params / 2, "{}", model.num_params());
        assert_eq!(model.modules.len(), 10);
        assert_eq!(model.heads.len(), 12);
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Stsgcn::new(&ctx, StsgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(traffic_tensor::init::uniform(&[1, 12, 5, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
