//! Text renderers for every table and figure of the paper.

use traffic_data::DATASETS;
use traffic_models::MODEL_TAXONOMY;

use crate::experiment::{CaseStudy, Fig1Row, Fig2Row};
use crate::report::{format_table, sparkline};
use crate::timing::Table3Row;

/// Renders Table I (dataset characterisation).
pub fn render_table1() -> String {
    let headers =
        vec!["Name", "Task", "Region", "Start", "End", "Days", "Nodes", "Features", "SensorID"];
    let rows: Vec<Vec<String>> = DATASETS
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                d.task.to_string(),
                d.region.to_string(),
                d.start_date.to_string(),
                d.end_date.to_string(),
                d.days.to_string(),
                d.nodes.to_string(),
                d.features.to_string(),
                if d.has_sensor_ids { "Y" } else { "N" }.to_string(),
            ]
        })
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| &**s).collect();
    format_table(&header_refs, &rows)
}

/// Renders Table II (model taxonomy).
pub fn render_table2() -> String {
    let rows: Vec<Vec<String>> = MODEL_TAXONOMY
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:?}", m.spatial),
                format!("{:?}", m.temporal),
                format!("{:?}", m.output),
                m.spatial.cons().to_string(),
            ]
        })
        .collect();
    format_table(&["Model", "Spatial", "Temporal", "Output", "Spatial cons"], &rows)
}

/// Renders Table III (computation time) rows.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2} s", r.train_time_per_epoch.as_secs_f64()),
                format!("{:.2} s", r.inference_time.as_secs_f64()),
                format!("{}k", r.params / 1000),
            ]
        })
        .collect();
    format_table(&["Model", "Train time/epoch", "Inference time", "# params"], &table_rows)
}

/// Renders Fig 1 rows (model comparison) as a table. Panic-isolated
/// cells render as `FAILED: <reason>` instead of NaN noise.
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| match &r.error {
            Some(reason) => vec![
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                format!("FAILED: {}", truncate_reason(reason)),
                "—".into(),
                "—".into(),
            ],
            None => vec![
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                format!("{:.3} ± {:.3}", r.mae.0, r.mae.1),
                format!("{:.3} ± {:.3}", r.rmse.0, r.rmse.1),
                format!("{:.2} ± {:.2} %", r.mape.0, r.mape.1),
            ],
        })
        .collect();
    format_table(&["Dataset", "Model", "Horizon", "MAE", "RMSE", "MAPE"], &table_rows)
}

/// Keeps failure reasons table-friendly (one line, bounded width).
fn truncate_reason(reason: &str) -> String {
    let line = reason.lines().next().unwrap_or("");
    if line.chars().count() > 60 {
        let cut: String = line.chars().take(57).collect();
        format!("{cut}…")
    } else {
        line.to_string()
    }
}

/// Renders Fig 2 rows (difficult intervals). Panic-isolated cells render
/// as `FAILED: <reason>`.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| match &r.error {
            Some(reason) => vec![
                r.model.clone(),
                format!("FAILED: {}", truncate_reason(reason)),
                "—".into(),
                "—".into(),
            ],
            None => vec![
                r.model.clone(),
                format!("{:.3}", r.overall.mae),
                format!("{:.3}", r.difficult.mae),
                format!("{:+.1} %", r.degradation_pct),
            ],
        })
        .collect();
    format_table(&["Model", "Overall MAE", "Difficult MAE", "Degradation"], &table_rows)
}

/// Renders the Fig 3 case study with terminal sparklines.
pub fn render_fig3(cs: &CaseStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!("Case study — model: {}, data: {}\n\n", cs.model, cs.dataset));
    for (label, case) in [("A (smooth)", &cs.smooth), ("B (volatile)", &cs.volatile)] {
        out.push_str(&format!(
            "Road {} — sensor {}, 1-step MAE {:.2}, {} difficult interval(s)\n",
            label,
            case.node,
            case.mae,
            case.difficult.len()
        ));
        out.push_str(&format!("  actual    {}\n", sparkline(&case.actual)));
        out.push_str(&format!("  predicted {}\n\n", sparkline(&case.predicted)));
    }
    out
}

/// CSV rows for Fig 1 (for plotting outside the terminal).
pub fn fig1_csv_rows(rows: &[Fig1Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "dataset",
        "model",
        "horizon",
        "mae_mean",
        "mae_std",
        "rmse_mean",
        "rmse_std",
        "mape_mean",
        "mape_std",
        "error",
    ];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                r.mae.0.to_string(),
                r.mae.1.to_string(),
                r.rmse.0.to_string(),
                r.rmse.1.to_string(),
                r.mape.0.to_string(),
                r.mape.1.to_string(),
                r.error.clone().unwrap_or_default(),
            ]
        })
        .collect();
    (headers, data)
}

/// CSV rows for Fig 2.
pub fn fig2_csv_rows(rows: &[Fig2Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["model", "overall_mae", "difficult_mae", "degradation_pct", "error"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.overall.mae.to_string(),
                r.difficult.mae.to_string(),
                r.degradation_pct.to_string(),
                r.error.clone().unwrap_or_default(),
            ]
        })
        .collect();
    (headers, data)
}

/// CSV rows for the Fig 3 traces: one row per plotted step and road.
pub fn fig3_csv_rows(cs: &CaseStudy) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["road", "sensor", "step", "actual", "predicted", "difficult"];
    let mut data = Vec::new();
    for (label, case) in [("smooth", &cs.smooth), ("volatile", &cs.volatile)] {
        for (i, (&a, &p)) in case.actual.iter().zip(&case.predicted).enumerate() {
            let difficult = case.difficult.iter().any(|&(s, e)| i >= s && i < e);
            data.push(vec![
                label.to_string(),
                case.node.to_string(),
                i.to_string(),
                a.to_string(),
                p.to_string(),
                u8::from(difficult).to_string(),
            ]);
        }
    }
    (headers, data)
}

/// Renders a wall-clock summary from the `traffic-obs` span registry:
/// one row per distinct span path finished since `marker`, aggregated
/// over repeats. Useful at the end of a run to see where time went.
pub fn render_span_summary(marker: u64) -> String {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, (usize, f64, f64)> = BTreeMap::new();
    for s in traffic_obs::spans_since(marker) {
        let entry = agg.entry(s.path).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += s.dur.as_secs_f64();
        entry.2 = entry.2.max(s.dur.as_secs_f64());
    }
    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(path, &(count, total, max))| {
            vec![
                path.clone(),
                count.to_string(),
                format!("{total:.3} s"),
                format!("{:.3} s", total / count as f64),
                format!("{max:.3} s"),
            ]
        })
        .collect();
    format_table(&["span", "count", "total", "mean", "max"], &rows)
}

/// CSV rows for Table III.
pub fn table3_csv_rows(rows: &[Table3Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["model", "train_secs_per_epoch", "inference_secs", "params"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.train_time_per_epoch.as_secs_f64().to_string(),
                r.inference_time.as_secs_f64().to_string(),
                r.params.to_string(),
            ]
        })
        .collect();
    (headers, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_metrics::MetricSet;

    #[test]
    fn table1_contains_all_datasets() {
        let t = render_table1();
        for d in ["METR-LA", "PeMS-BAY", "PeMSD7(M)", "PeMSD3", "PeMSD4", "PeMSD7", "PeMSD8"] {
            assert!(t.contains(d), "missing {d}");
        }
        assert!(t.contains("207")); // METR-LA node count
        assert!(t.contains("883")); // PeMSD7 node count
    }

    #[test]
    fn table2_contains_all_models() {
        let t = render_table2();
        for m in MODEL_TAXONOMY {
            assert!(t.contains(m.name));
        }
    }

    #[test]
    fn table3_formatting() {
        let rows = vec![Table3Row {
            model: "STGCN".into(),
            train_time_per_epoch: std::time::Duration::from_millis(1480),
            inference_time: std::time::Duration::from_millis(16700),
            params: 320_000,
        }];
        let t = render_table3(&rows);
        assert!(t.contains("1.48 s"));
        assert!(t.contains("16.70 s"));
        assert!(t.contains("320k"));
    }

    #[test]
    fn fig2_formatting() {
        let rows = vec![Fig2Row {
            model: "GMAN".into(),
            overall: MetricSet { mae: 2.0, rmse: 3.0, mape: 5.0, count: 10 },
            difficult: MetricSet { mae: 4.0, rmse: 6.0, mape: 9.0, count: 3 },
            degradation_pct: 100.0,
            error: None,
        }];
        let t = render_fig2(&rows);
        assert!(t.contains("GMAN"));
        assert!(t.contains("+100.0 %"));
    }

    #[test]
    fn failed_cells_render_explicitly() {
        let rows = vec![
            Fig1Row {
                dataset: "METR-LA".into(),
                model: "GMAN".into(),
                horizon: "15 min",
                mae: (1.0, 0.1),
                rmse: (2.0, 0.2),
                mape: (3.0, 0.3),
                error: None,
            },
            Fig1Row::failed("METR-LA", "DCRNN", "15 min", "injected mid-epoch abort".into()),
        ];
        let t = render_fig1(&rows);
        assert!(t.contains("FAILED: injected mid-epoch abort"), "{t}");
        assert!(!t.contains("NaN"), "failed rows must not print NaN metrics:\n{t}");
        let f2 = vec![Fig2Row::failed("DCRNN", "boom".into())];
        let t2 = render_fig2(&f2);
        assert!(t2.contains("FAILED: boom"), "{t2}");
        // CSV keeps the reason in a dedicated column
        let (h, d) = fig2_csv_rows(&f2);
        assert_eq!(*h.last().unwrap(), "error");
        assert_eq!(d[0].last().unwrap(), "boom");
    }

    #[test]
    fn fig3_csv_marks_difficult_runs() {
        let case = crate::experiment::RoadCase {
            node: 3,
            mae: 1.0,
            actual: vec![60.0, 55.0, 50.0],
            predicted: vec![59.0, 56.0, 52.0],
            difficult: vec![(1, 3)],
        };
        let cs = CaseStudy {
            model: "Graph-WaveNet".into(),
            dataset: "PeMS-BAY".into(),
            smooth: case.clone(),
            volatile: case,
        };
        let (h, d) = fig3_csv_rows(&cs);
        assert_eq!(h.len(), 6);
        assert_eq!(d.len(), 6); // 3 steps × 2 roads
        assert_eq!(d[0][5], "0");
        assert_eq!(d[1][5], "1");
        assert_eq!(d[2][5], "1");
    }

    #[test]
    fn span_summary_lists_finished_spans() {
        let marker = traffic_obs::span_marker();
        {
            let _g = traffic_obs::span!("tables_summary_test");
        }
        let t = render_span_summary(marker);
        assert!(t.contains("tables_summary_test"));
        assert!(t.contains("span"));
    }

    #[test]
    fn fig1_csv_roundtrip() {
        let rows = vec![Fig1Row {
            dataset: "METR-LA".into(),
            model: "GMAN".into(),
            horizon: "15 min",
            mae: (1.0, 0.1),
            rmse: (2.0, 0.2),
            mape: (3.0, 0.3),
            error: None,
        }];
        let (h, d) = fig1_csv_rows(&rows);
        assert_eq!(h.len(), d[0].len());
        assert_eq!(d[0][0], "METR-LA");
    }
}
