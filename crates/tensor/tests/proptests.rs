//! Property-based tests of the tensor engine: algebraic identities,
//! broadcasting laws, and autograd vs finite differences on random shapes.

use proptest::prelude::*;
use traffic_tensor::gradcheck::grad_check;
use traffic_tensor::{shape, Tensor};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_for(shape_v: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = shape::numel(&shape_v);
    prop::collection::vec(-2.0f32..2.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, &shape_v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_associative((a, b, c) in small_shape().prop_flat_map(|s| {
        (tensor_for(s.clone()), tensor_for(s.clone()), tensor_for(s))
    })) {
        let lhs = a.add(&b).add(&c);
        let rhs = a.add(&b.add(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_distributes_over_add((a, b, c) in small_shape().prop_flat_map(|s| {
        (tensor_for(s.clone()), tensor_for(s.clone()), tensor_for(s))
    })) {
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_shape_law(s1 in small_shape(), s2 in small_shape()) {
        // broadcast is symmetric when defined
        let b12 = shape::broadcast_shapes(&s1, &s2);
        let b21 = shape::broadcast_shapes(&s2, &s1);
        prop_assert_eq!(b12, b21);
    }

    #[test]
    fn reshape_preserves_sum(t in small_shape().prop_flat_map(tensor_for)) {
        let n = t.len();
        let flat = t.reshape(&[n]);
        prop_assert!((flat.sum_all() - t.sum_all()).abs() < 1e-3);
    }

    #[test]
    fn sum_axes_total_matches(t in small_shape().prop_flat_map(tensor_for)) {
        let axes: Vec<usize> = (0..t.rank()).collect();
        let all = t.sum_axes(&axes, false);
        prop_assert!((all.item() - t.sum_all()).abs() < 1e-2);
    }

    #[test]
    fn matmul_associative_3(m in 1usize..4, k in 1usize..4, l in 1usize..4, n in 1usize..4) {
        // (A·B)·C == A·(B·C) within fp tolerance
        let a = Tensor::from_vec((0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * l).map(|i| (i as f32 * 0.21).cos()).collect(), &[k, l]);
        let c = Tensor::from_vec((0..l * n).map(|i| (i as f32 * 0.13).sin()).collect(), &[l, n]);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn autograd_matches_numeric_on_random_composite(
        t in small_shape().prop_flat_map(tensor_for)
    ) {
        // f(x) = sum(tanh(x) * x + 0.5 x²) — smooth everywhere.
        let report = grad_check(&[t], 1e-2, |_tape, v| {
            v[0].tanh().mul(&v[0]).add(&v[0].powf(2.0).mul_scalar(0.5)).sum_all()
        });
        prop_assert!(report.max_rel_err < 5e-2, "rel err {}", report.max_rel_err);
    }

    #[test]
    fn conv_linear_in_input(b in 1usize..3, c in 1usize..3, h in 1usize..3, w in 4usize..8) {
        // conv2d(x + y) == conv2d(x) + conv2d(y)
        let mk = |seed: f32| {
            Tensor::from_vec(
                (0..b * c * h * w).map(|i| ((i as f32 + seed) * 0.3).sin()).collect(),
                &[b, c, h, w],
            )
        };
        let x = mk(0.0);
        let y = mk(7.0);
        let kern = Tensor::from_vec(
            (0..(2 * c) * 2).map(|i| (i as f32 * 0.11).cos()).collect(),
            &[2, c, 1, 2],
        );
        let lhs = x.add(&y).conv2d(&kern, 1, 1);
        let rhs = x.conv2d(&kern, 1, 1).add(&y.conv2d(&kern, 1, 1));
        for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((p - q).abs() < 1e-3);
        }
    }

    #[test]
    fn narrow_concat_roundtrip(t in small_shape().prop_flat_map(tensor_for), axis_seed in 0usize..8) {
        let axis = axis_seed % t.rank();
        let d = t.shape()[axis];
        prop_assume!(d >= 2);
        let split = d / 2;
        let a = t.narrow(axis, 0, split);
        let b = t.narrow(axis, split, d - split);
        prop_assert_eq!(Tensor::concat(&[&a, &b], axis), t);
    }

    #[test]
    fn softmax_is_distribution(rows in 1usize..5, cols in 2usize..6) {
        let t = Tensor::from_vec(
            (0..rows * cols).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.7).collect(),
            &[rows, cols],
        );
        let tape = traffic_tensor::Tape::new();
        let y = tape.constant(t).softmax(1).value();
        for r in 0..rows {
            let mut sum = 0.0f32;
            for c in 0..cols {
                let v = y.at(&[r, c]);
                prop_assert!((0.0..=1.0).contains(&v));
                sum += v;
            }
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }
}
