//! Elementwise kernel wall-clock benchmark behind `BENCH_elementwise.json`.
//!
//! Not a criterion harness: the numbers feed an acceptance gate (see
//! README §Performance), so this binary times each SIMD kernel against
//! its scalar reference directly — no dispatch, no pool — at the
//! METR-LA per-layer elementwise size `207 nodes × 64 channels`
//! (plus one batch-scaled size for the hottest kernel) and writes one
//! machine-readable JSON file at the workspace root.
//!
//! Run with `scripts/bench_elementwise.sh`, or directly:
//! `cargo bench --bench elementwise` (`BENCH_SMOKE=1` for a fast CI
//! pass).
//!
//! Reading the speedups: the "scalar" baseline is the production
//! fallback compiled at `target-cpu=native`, so LLVM auto-vectorizes
//! the simple straight-line loops (`gated_bwd`, `adam_update`, and to a
//! lesser degree the enum-dispatched binaries) — speedups near 1× there
//! mean the compiler already emits vector code for the fallback, not
//! that the kernel is slow. The hand-written kernels earn their keep on
//! the branchy transcendental paths (`tanh`, `sigmoid`, `gated_fwd`),
//! which defeat the auto-vectorizer and show the full 5–8× win.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traffic_tensor::simd::{self, scalar, Binary, Ternary, Unary};

/// The paper's METR-LA graph: one layer's activation block.
const N_SMALL: usize = 207 * 64;
/// Batch-16 block: what a full training step streams per gated unit.
const N_LARGE: usize = 207 * 64 * 16;

/// Best-of-`reps` seconds per call, each sample averaging `inner`
/// back-to-back calls. Minimum rather than mean: scheduler noise on a
/// shared runner only ever adds time.
fn best_secs(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

struct Row {
    name: &'static str,
    n: usize,
    scalar_secs: f64,
    simd_secs: f64,
    flops_per_elem: usize,
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    // Elementwise kernels are microseconds per call; use high `inner`
    // so each sample is comfortably above timer resolution.
    let (reps, inner) = if smoke { (6, 8) } else { (40, 64) };
    let mut rng = StdRng::seed_from_u64(42);
    let backend = simd::active_backend();

    let buf = |n: usize, rng: &mut StdRng| -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut bench_unary = |name: &'static str, op: Unary, n: usize, rng: &mut StdRng| {
        let src = buf(n, rng);
        let mut dst = vec![0.0f32; n];
        let scalar_secs = best_secs(reps, inner, || {
            scalar::unary(op, &src, &mut dst);
            std::hint::black_box(&mut dst);
        });
        let simd_secs = if simd::try_unary_avx2(op, &src, &mut dst) {
            best_secs(reps, inner, || {
                simd::try_unary_avx2(op, &src, &mut dst);
                std::hint::black_box(&mut dst);
            })
        } else {
            scalar_secs
        };
        rows.push(Row { name, n, scalar_secs, simd_secs, flops_per_elem: op.flops_per_elem() });
    };

    bench_unary("tanh", Unary::Tanh, N_SMALL, &mut rng);
    bench_unary("tanh_large", Unary::Tanh, N_LARGE, &mut rng);
    bench_unary("sigmoid", Unary::Sigmoid, N_SMALL, &mut rng);
    bench_unary("mul_s", Unary::MulS(1.7), N_SMALL, &mut rng);

    // Binary kernels.
    for (name, op) in [("add", Binary::Add), ("axpy", Binary::Axpy(0.3))] {
        let a = buf(N_SMALL, &mut rng);
        let b = buf(N_SMALL, &mut rng);
        let mut dst = vec![0.0f32; N_SMALL];
        let scalar_secs = best_secs(reps, inner, || {
            scalar::binary(op, &a, &b, &mut dst);
            std::hint::black_box(&mut dst);
        });
        let simd_secs = if simd::try_binary_avx2(op, &a, &b, &mut dst) {
            best_secs(reps, inner, || {
                simd::try_binary_avx2(op, &a, &b, &mut dst);
                std::hint::black_box(&mut dst);
            })
        } else {
            scalar_secs
        };
        rows.push(Row {
            name,
            n: N_SMALL,
            scalar_secs,
            simd_secs,
            flops_per_elem: op.flops_per_elem(),
        });
    }

    // Fused gated activation, forward and backward.
    {
        let f = buf(N_SMALL, &mut rng);
        let g = buf(N_SMALL, &mut rng);
        let (mut t, mut s, mut out) =
            (vec![0.0f32; N_SMALL], vec![0.0f32; N_SMALL], vec![0.0f32; N_SMALL]);
        let scalar_secs = best_secs(reps, inner, || {
            scalar::gated_fwd(&f, &g, &mut t, &mut s, &mut out);
            std::hint::black_box(&mut out);
        });
        let simd_secs = if simd::try_gated_fwd_avx2(&f, &g, &mut t, &mut s, &mut out) {
            best_secs(reps, inner, || {
                simd::try_gated_fwd_avx2(&f, &g, &mut t, &mut s, &mut out);
                std::hint::black_box(&mut out);
            })
        } else {
            scalar_secs
        };
        rows.push(Row {
            name: "gated_fwd",
            n: N_SMALL,
            scalar_secs,
            simd_secs,
            flops_per_elem: 41,
        });

        let (mut gf, mut gg) = (vec![0.0f32; N_SMALL], vec![0.0f32; N_SMALL]);
        let scalar_secs = best_secs(reps, inner, || {
            scalar::gated_bwd(&f, &t, &s, &mut gf, &mut gg);
            std::hint::black_box(&mut gf);
        });
        let simd_secs = if simd::try_gated_bwd_avx2(&f, &t, &s, &mut gf, &mut gg) {
            best_secs(reps, inner, || {
                simd::try_gated_bwd_avx2(&f, &t, &s, &mut gf, &mut gg);
                std::hint::black_box(&mut gf);
            })
        } else {
            scalar_secs
        };
        rows.push(Row { name: "gated_bwd", n: N_SMALL, scalar_secs, simd_secs, flops_per_elem: 9 });
    }

    // Fused Adam update.
    {
        let op = Ternary::AdamUpdate { inv_bc1: 1.01, inv_bc2: 1.001, eps: 1e-8, lr: 1e-3 };
        let m = buf(N_SMALL, &mut rng);
        let v: Vec<f32> = buf(N_SMALL, &mut rng).iter().map(|x| x * x).collect();
        let mut p = buf(N_SMALL, &mut rng);
        let scalar_secs = best_secs(reps, inner, || {
            scalar::ternary_assign(op, &mut p, &m, &v);
            std::hint::black_box(&mut p);
        });
        let simd_secs = if simd::try_ternary_assign_avx2(op, &mut p, &m, &v) {
            best_secs(reps, inner, || {
                simd::try_ternary_assign_avx2(op, &mut p, &m, &v);
                std::hint::black_box(&mut p);
            })
        } else {
            scalar_secs
        };
        rows.push(Row {
            name: "adam_update",
            n: N_SMALL,
            scalar_secs,
            simd_secs,
            flops_per_elem: op.flops_per_elem(),
        });
    }

    // Horizontal sum (flag-gated in production dispatch; timed directly
    // here to document what TRAFFIC_SIMD_REDUCE=1 buys).
    {
        let src = buf(N_LARGE, &mut rng);
        let scalar_secs = best_secs(reps, inner, || {
            std::hint::black_box(scalar::sum(&src));
        });
        let simd_secs = if simd::try_sum_avx2(&src).is_some() {
            best_secs(reps, inner, || {
                std::hint::black_box(simd::try_sum_avx2(&src));
            })
        } else {
            scalar_secs
        };
        rows.push(Row { name: "sum", n: N_LARGE, scalar_secs, simd_secs, flops_per_elem: 1 });
    }

    let mut kernels = String::new();
    for (i, r) in rows.iter().enumerate() {
        let gflops = (r.n * r.flops_per_elem) as f64 / r.simd_secs / 1e9;
        kernels.push_str(&format!(
            "    \"{}\": {{\"n\": {}, \"scalar_secs\": {:.6e}, \"simd_secs\": {:.6e}, \"speedup_simd_vs_scalar\": {:.3}, \"gflops_simd\": {:.3}}}{}\n",
            r.name,
            r.n,
            r.scalar_secs,
            r.simd_secs,
            r.scalar_secs / r.simd_secs,
            gflops,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"sizes\": {{\"small\": {small}, \"large\": {large}}},\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"kernels\": {{\n",
            "{kernels}",
            "  }}\n",
            "}}\n"
        ),
        small = N_SMALL,
        large = N_LARGE,
        backend = backend,
        smoke = smoke,
        kernels = kernels,
    );
    print!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_elementwise.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
