//! Ablation benches for the design choices the paper's analysis (§V-A,
//! §VI) attributes performance differences to:
//!
//! 1. Graph-WaveNet's adaptive adjacency on/off (accuracy + cost);
//! 2. STGCN's many-to-one rollout vs a single forward (the Table III
//!    inference-time penalty);
//! 3. RNN error accumulation: DCRNN horizon-wise error growth vs the
//!    direct-output Graph-WaveNet;
//! 4. Spectral vs spatial graph convolution inside STGCN (the Table II
//!    axis the paper's §V-A analysis singles out).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_bench::{bench_scale, report_scale};
use traffic_core::{eval_split, predict, prepare_experiment, train, TrainConfig};
use traffic_metrics::evaluate_horizons;
use traffic_models::{GraphWavenet, GraphWavenetConfig, TrafficModel};
use traffic_tensor::Tape;

fn train_gwn(adaptive: bool) {
    let scale = report_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = GraphWavenetConfig { use_adaptive: adaptive, ..Default::default() };
    let model = GraphWavenet::new(&exp.ctx, cfg, &mut rng);
    let tc = TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        max_batches_per_epoch: scale.max_train_batches,
        ..Default::default()
    };
    train(&model, &exp.data, &tc);
    let pred = predict(&model, &test, &exp.data.scaler, scale.batch_size);
    let ms = evaluate_horizons(&pred, &test.y_raw, &[2, 5, 11], None);
    println!(
        "  adaptive={adaptive}: params {}, MAE 15/30/60 min = {:.3}/{:.3}/{:.3}",
        model.num_params(),
        ms[0].mae,
        ms[1].mae,
        ms[2].mae
    );
}

fn horizon_error_growth(name: &str) {
    let scale = report_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let (model, _) = traffic_core::train_model(name, &exp, &scale, 9);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let horizons: Vec<usize> = (0..12).collect();
    let ms = evaluate_horizons(&pred, &test.y_raw, &horizons, None);
    let maes: Vec<String> = ms.iter().map(|m| format!("{:.2}", m.mae)).collect();
    let growth = ms[11].mae / ms[0].mae.max(1e-6);
    println!("  {name}: per-step MAE [{}] (growth ×{:.2})", maes.join(", "), growth);
}

fn train_stgcn(kind: traffic_models::SpatialKind) {
    use traffic_models::{SpatialKind, Stgcn, StgcnConfig};
    let scale = report_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let mut rng = StdRng::seed_from_u64(6);
    let model =
        Stgcn::new(&exp.ctx, StgcnConfig { spatial_kind: kind, ..Default::default() }, &mut rng);
    let tc = TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        max_batches_per_epoch: scale.max_train_batches,
        ..Default::default()
    };
    train(&model, &exp.data, &tc);
    let pred = predict(&model, &test, &exp.data.scaler, scale.batch_size);
    let ms = evaluate_horizons(&pred, &test.y_raw, &[2, 5, 11], None);
    let label = match kind {
        SpatialKind::Spectral => "spectral (Cheb)",
        SpatialKind::Diffusion => "spatial (diffusion)",
    };
    println!(
        "  {label}: params {}, MAE 15/30/60 min = {:.3}/{:.3}/{:.3}",
        model.num_params(),
        ms[0].mae,
        ms[1].mae,
        ms[2].mae
    );
}

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("ablations");
    println!("\n== Ablation: Graph-WaveNet adaptive adjacency ==");
    train_gwn(true);
    train_gwn(false);

    println!("\n== Ablation: STGCN spectral vs spatial graph conv ==");
    train_stgcn(traffic_models::SpatialKind::Spectral);
    train_stgcn(traffic_models::SpatialKind::Diffusion);

    println!("\n== Ablation: RNN error accumulation (per-horizon MAE) ==");
    horizon_error_growth("DCRNN");
    horizon_error_growth("Graph-WaveNet");
    println!();

    // Timed kernel: STGCN many-to-one rollout vs single-step forward.
    let scale = bench_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let stgcn =
        traffic_models::Stgcn::new(&exp.ctx, traffic_models::StgcnConfig::default(), &mut rng);
    let x = exp.data.test.truncate(4).x;
    let mut group = c.benchmark_group("ablation/stgcn_output_style");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("many_to_one_rollout_12_steps", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            stgcn.forward(&tape, xv, None).value()
        });
    });
    group.bench_function("single_step", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            stgcn.forward_step(&tape, xv).value()
        });
    });
    group.finish();

    // Timed kernel: adaptive vs fixed adjacency forward cost.
    let mut group = c.benchmark_group("ablation/gwn_adaptive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for adaptive in [true, false] {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GraphWavenetConfig { use_adaptive: adaptive, ..Default::default() };
        let gwn = GraphWavenet::new(&exp.ctx, cfg, &mut rng);
        let xc = x.clone();
        group.bench_function(format!("forward_adaptive_{adaptive}"), move |b| {
            b.iter(|| {
                let tape = Tape::new();
                let xv = tape.constant(xc.clone());
                gwn.forward(&tape, xv, None).value()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
