//! `insight` — cross-run analytics CLI over `reports/runs/*.jsonl`.
//!
//! ```text
//! insight list  [--dir reports/runs]
//! insight show  <run> [--dir reports/runs]
//! insight diff  <base> <cand> [--tol 0.05] [--dir reports/runs]
//! insight html  <run> [--baseline <run>] [--out reports/insight] [--dir reports/runs]
//! insight tail  <run> [--poll-ms 500] [--max-ms <n>] [--dir reports/runs]
//! ```
//!
//! `diff` exits 1 when any leaf regressed beyond the tolerance (so CI
//! can gate on it) and 2 on usage errors. `html` writes a fully
//! self-contained dashboard to `<out>/<run>.html`. `tail` follows a
//! live (growing) manifest — `<run>` may also be a path, so per-cell
//! manifests under `TRAFFIC_CELL_MANIFESTS` tail the same way — and
//! exits when the run ends.

use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use traffic_obs::json::{self, Json};
use traffic_obs::store::{diff, RunStore, RunSummary};
use traffic_obs::{html, sparkline};

const DEFAULT_DIR: &str = "reports/runs";
const DEFAULT_OUT: &str = "reports/insight";
const DEFAULT_TOL: f64 = 0.05;
const DEFAULT_POLL_MS: u64 = 500;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut dir = DEFAULT_DIR.to_string();
    let mut out = DEFAULT_OUT.to_string();
    let mut baseline: Option<String> = None;
    let mut tol = DEFAULT_TOL;
    let mut poll_ms = DEFAULT_POLL_MS;
    let mut max_ms: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--dir" => match take_value(&mut i) {
                Some(v) => dir = v,
                None => return usage("--dir needs a value"),
            },
            "--out" => match take_value(&mut i) {
                Some(v) => out = v,
                None => return usage("--out needs a value"),
            },
            "--baseline" => match take_value(&mut i) {
                Some(v) => baseline = Some(v),
                None => return usage("--baseline needs a value"),
            },
            "--tol" => match take_value(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => tol = v,
                None => return usage("--tol needs a number"),
            },
            "--poll-ms" => match take_value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => poll_ms = v.max(1),
                None => return usage("--poll-ms needs a number"),
            },
            "--max-ms" => match take_value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => max_ms = Some(v),
                None => return usage("--max-ms needs a number"),
            },
            "-h" | "--help" => return usage(""),
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag {flag}"));
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }

    let Some((&cmd, rest)) = positional.split_first() else {
        return usage("missing subcommand");
    };
    match cmd {
        "list" => cmd_list(&dir),
        "show" => match rest {
            [run] => cmd_show(&dir, run),
            _ => usage("show takes exactly one run name"),
        },
        "diff" => match rest {
            [base, cand] => cmd_diff(&dir, base, cand, tol),
            _ => usage("diff takes exactly two run names"),
        },
        "html" => match rest {
            [run] => cmd_html(&dir, run, baseline.as_deref(), &out),
            _ => usage("html takes exactly one run name"),
        },
        "tail" => match rest {
            [run] => cmd_tail(&dir, run, poll_ms, max_ms),
            _ => usage("tail takes exactly one run name or manifest path"),
        },
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("insight: {err}\n");
    }
    eprintln!(
        "usage:\n  insight list  [--dir {DEFAULT_DIR}]\n  \
         insight show  <run> [--dir {DEFAULT_DIR}]\n  \
         insight diff  <base> <cand> [--tol {DEFAULT_TOL}] [--dir {DEFAULT_DIR}]\n  \
         insight html  <run> [--baseline <run>] [--out {DEFAULT_OUT}] [--dir {DEFAULT_DIR}]\n  \
         insight tail  <run> [--poll-ms {DEFAULT_POLL_MS}] [--max-ms <n>] [--dir {DEFAULT_DIR}]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn open_store(dir: &str) -> Result<RunStore, ExitCode> {
    RunStore::index(dir).map_err(|e| {
        eprintln!("insight: cannot index {dir}/: {e}");
        ExitCode::FAILURE
    })
}

fn load(dir: &str, run: &str) -> Result<RunSummary, ExitCode> {
    let store = open_store(dir)?;
    match store.get(run) {
        Some(summary) => Ok(summary.clone()),
        None => {
            eprintln!("insight: no run named `{run}` under {dir}/");
            if store.runs().is_empty() {
                eprintln!("insight: (no manifests found at all — is the directory right?)");
            } else {
                eprintln!("insight: available runs:");
                for r in store.runs().iter().take(10) {
                    eprintln!("  {}", r.name);
                }
            }
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_list(dir: &str) -> ExitCode {
    let store = match open_store(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if store.runs().is_empty() {
        println!("no run manifests under {dir}/");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<32} {:>8} {:>9} {:>7} {:>7}  loss",
        "run (newest first)", "events", "wall_s", "epochs", "blame"
    );
    for run in store.runs() {
        let losses: Vec<f32> = run.epochs.iter().map(|e| e.loss as f32).collect();
        let final_loss =
            losses.last().map_or("-".to_string(), |l| format!("{l:.4} {}", sparkline(&losses)));
        println!(
            "{:<32} {:>8} {:>9} {:>7} {:>7}  {}",
            run.name,
            run.events,
            run.wall_s.map_or("-".to_string(), |w| format!("{w:.1}")),
            run.epochs.len(),
            if run.blame.is_empty() { "-".to_string() } else { run.blame.len().to_string() },
            final_loss
        );
    }
    ExitCode::SUCCESS
}

fn cmd_show(dir: &str, run: &str) -> ExitCode {
    let summary = match load(dir, run) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("run     {}", summary.name);
    println!("path    {}", summary.path.display());
    println!("git     {}", summary.git);
    println!("threads {}", summary.threads);
    match summary.wall_s {
        Some(w) => println!("wall    {w:.2}s"),
        None => println!("wall    (no run_end — crashed or still running)"),
    }
    print!("events  {}", summary.events);
    for (kind, n) in &summary.event_counts {
        print!("  {kind}:{n}");
    }
    println!();
    if summary.malformed > 0 {
        println!("warning {} malformed manifest lines", summary.malformed);
    }
    for model in summary.models() {
        let losses: Vec<f32> =
            summary.epochs.iter().filter(|e| e.model == model).map(|e| e.loss as f32).collect();
        if let (Some(first), Some(last)) = (losses.first(), losses.last()) {
            println!(
                "loss    {model}: {first:.4} → {last:.4} over {} epochs {}",
                losses.len(),
                sparkline(&losses)
            );
        }
    }
    if !summary.insight.is_empty() {
        println!(
            "insight {} samples across {} layers",
            summary.insight.len(),
            summary.insight_groups().len()
        );
    }
    if !summary.sys.is_empty() {
        let peak = summary.sys.iter().map(|p| p.rss_bytes).fold(0.0f64, f64::max);
        println!(
            "system  {} samples, peak RSS {:.0} MB",
            summary.sys.len(),
            peak / (1024.0 * 1024.0)
        );
    }
    for b in summary.blame.iter().filter(|b| b.rank == 0) {
        println!(
            "blame   {} at epoch {} step {}: {}{}",
            b.reason,
            b.epoch,
            b.step,
            b.group,
            if b.non_finite { " (non-finite grads)" } else { "" }
        );
    }
    for a in &summary.alerts {
        println!("alert   {} {} {}", a.rule, a.state, a.message);
    }
    // Histogram summaries with the exact extrema next to the bucketed
    // quantiles (min/max come from dedicated atomics, not buckets).
    let hists: Vec<(&String, [f64; 6])> = summary
        .metrics
        .iter()
        .filter_map(|(name, m)| match m {
            traffic_obs::store::MetricValue::Histogram {
                count, mean, min, max, p50, p99, ..
            } => Some((name, [*count, *mean, *min, *max, *p50, *p99])),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        println!(
            "\n{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "min", "max", "p50", "p99"
        );
        for (name, [count, mean, min, max, p50, p99]) in hists {
            println!(
                "{name:<28} {count:>8} {mean:>10.4} {min:>10.4} {max:>10.4} \
                 {p50:>10.4} {p99:>10.4}"
            );
        }
        println!();
    }
    let comparable = summary.comparable();
    println!(
        "leaves  {} comparable metrics (use `insight diff` against another run)",
        comparable.len()
    );
    ExitCode::SUCCESS
}

/// Follows a live manifest: polls the file for appended lines, parses
/// each through the same JSON layer as [`RunSummary`], and renders the
/// human-relevant kinds. Exits when the run ends (`run_end` seen) or
/// the `--max-ms` budget expires. A shrinking file (the sink truncates
/// on rewrite) restarts from the top.
fn cmd_tail(dir: &str, run: &str, poll_ms: u64, max_ms: Option<u64>) -> ExitCode {
    // A bare run name resolves under --dir; anything path-like (slash
    // or .jsonl suffix) is used verbatim so per-cell manifests work.
    let path: PathBuf = if run.contains('/') || run.ends_with(".jsonl") {
        run.into()
    } else {
        PathBuf::from(dir).join(format!("{run}.jsonl"))
    };
    let start = Instant::now();
    let deadline = max_ms.map(|ms| start + Duration::from_millis(ms));
    let poll = Duration::from_millis(poll_ms);
    let mut offset: u64 = 0;
    let mut partial = String::new();
    let mut announced = false;
    let mut ended = false;
    loop {
        let len = std::fs::metadata(&path).map(|m| m.len()).ok();
        match len {
            None => {
                if !announced {
                    println!("[tail] waiting for {} to appear…", path.display());
                    announced = true;
                }
            }
            Some(len) => {
                if !announced {
                    println!("[tail] following {}", path.display());
                    announced = true;
                }
                if len < offset {
                    println!("[tail] manifest truncated (new run?) — restarting from the top");
                    offset = 0;
                    partial.clear();
                }
                if len > offset {
                    match read_from(&path, offset) {
                        Ok(chunk) => {
                            offset = len;
                            partial.push_str(&chunk);
                            // Only complete lines parse; the trailing
                            // fragment waits for the writer's next flush.
                            while let Some(nl) = partial.find('\n') {
                                let line: String = partial.drain(..=nl).collect();
                                ended |= render_tail_line(line.trim());
                            }
                        }
                        Err(e) => {
                            eprintln!("insight: cannot read {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
        }
        if ended {
            return ExitCode::SUCCESS;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(poll);
    }
}

/// Reads the file contents from `offset` to EOF.
fn read_from(path: &std::path::Path, offset: u64) -> std::io::Result<String> {
    let mut f = std::fs::File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = String::new();
    f.read_to_string(&mut buf)?;
    Ok(buf)
}

fn num(ev: &Json, key: &str) -> f64 {
    ev.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn text<'j>(ev: &'j Json, key: &str) -> &'j str {
    ev.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// One manifest line → at most one console line (same vocabulary as
/// the store's projection; registry noise stays silent). Returns true
/// when the line was the run's `run_end`.
fn render_tail_line(line: &str) -> bool {
    if line.is_empty() {
        return false;
    }
    let Ok(ev) = json::parse(line) else {
        return false; // torn tail of a crashed writer
    };
    match ev.get("type").and_then(Json::as_str).unwrap_or("") {
        "run_start" => {
            println!("[tail] run '{}' started (git {})", text(&ev, "run"), text(&ev, "git"))
        }
        "run_end" => {
            println!("[tail] run '{}' finished in {:.2}s", text(&ev, "run"), num(&ev, "wall_s"));
            return true;
        }
        "epoch" => {
            let mut line = format!(
                "[tail] {} epoch {} loss {:.4}",
                text(&ev, "model"),
                num(&ev, "epoch"),
                num(&ev, "loss")
            );
            if let Some(vl) = ev.get("val_loss").and_then(Json::as_f64) {
                line.push_str(&format!(" val {vl:.4}"));
            }
            println!("{line}");
        }
        "insight" => {
            if let Some(op) = ev.get("op").and_then(Json::as_str) {
                println!(
                    "[tail] step {} {} saturation {:.3}",
                    num(&ev, "step"),
                    op,
                    num(&ev, "saturation")
                );
            } else {
                println!(
                    "[tail] step {} {} grad {:.3e} upd {:.1e}",
                    num(&ev, "step"),
                    text(&ev, "group"),
                    num(&ev, "grad_norm"),
                    num(&ev, "update_ratio")
                );
            }
        }
        "alert" => println!(
            "[tail] ALERT {} {}: {}",
            text(&ev, "rule"),
            text(&ev, "state"),
            text(&ev, "message")
        ),
        "blame" => println!(
            "[tail] blame {} rank {} {}",
            text(&ev, "reason"),
            num(&ev, "rank"),
            text(&ev, "group")
        ),
        "cell_start" => println!("[tail] cell {} started", text(&ev, "cell")),
        "cell_end" => println!("[tail] cell {} finished", text(&ev, "cell")),
        _ => {}
    }
    false
}

fn cmd_diff(dir: &str, base: &str, cand: &str, tol: f64) -> ExitCode {
    let (base, cand) = match (load(dir, base), load(dir, cand)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let d = diff(&base, &cand, tol);
    print!("{}", d.render());
    if d.regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_html(dir: &str, run: &str, baseline: Option<&str>, out: &str) -> ExitCode {
    let summary = match load(dir, run) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let base = match baseline {
        Some(name) => match load(dir, name) {
            Ok(s) => Some(s),
            Err(code) => return code,
        },
        None => None,
    };
    match html::export(&summary, base.as_ref(), out) {
        Ok(path) => {
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("insight: cannot write dashboard: {e}");
            ExitCode::FAILURE
        }
    }
}
