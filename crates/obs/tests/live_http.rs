//! End-to-end exercise of the live telemetry server over real sockets:
//! bind on an ephemeral port, hit every endpoint, stream `/events`
//! while events are emitted, and verify the Prometheus exposition is
//! line-well-formed. One `#[test]` because the sink table and metric
//! registry are process-global.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use traffic_obs::live::LiveServer;
use traffic_obs::{json, Event};

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("has header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

#[test]
fn live_server_serves_all_endpoints() {
    // A manifest directory with one finished run for /runs.
    let dir = std::env::temp_dir().join("traffic_obs_live_http_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("r1.jsonl"),
        concat!(
            "{\"type\":\"run_start\",\"run\":\"r1\",\"git\":\"abc\",\"threads\":2}\n",
            "{\"type\":\"epoch\",\"model\":\"STGCN\",\"epoch\":0,\"loss\":0.5}\n",
            "{\"type\":\"alert\",\"rule\":\"step_stall\",\"state\":\"raised\",",
            "\"message\":\"m\",\"value\":45.0,\"threshold\":30.0}\n",
            "{\"type\":\"run_end\",\"run\":\"r1\",\"wall_s\":1.0}\n",
        ),
    )
    .unwrap();

    // Live metrics the exporter should surface.
    traffic_obs::counter("httptest/requests").add(7);
    traffic_obs::gauge("httptest/load").set(1.5);
    let h = traffic_obs::histogram("httptest/lat_s");
    h.record(0.002);
    h.record(0.004);

    let server = LiveServer::start_with("127.0.0.1:0", Some("itest"), Some(&dir)).expect("bind");
    let addr = server.addr().to_string();

    // ---- / (index) ----------------------------------------------------
    let (status, body) = http_get(&addr, "/");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("/metrics"));

    // ---- /metrics -----------------------------------------------------
    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("traffic_httptest_requests_total 7"));
    assert!(metrics.contains("traffic_httptest_load 1.5"));
    assert!(metrics.contains("traffic_httptest_lat_s_bucket{le=\"+Inf\"} 2"));
    assert!(metrics.contains("traffic_httptest_lat_s_min 0.002"));
    assert!(metrics.contains("traffic_httptest_lat_s_max 0.004"));
    for line in metrics.lines() {
        let ok = line.starts_with("# HELP ") || line.starts_with("# TYPE ") || {
            let mut it = line.rsplitn(2, ' ');
            let val = it.next().unwrap_or("");
            let name = it.next().unwrap_or("");
            !name.is_empty() && (val.parse::<f64>().is_ok() || val == "+Inf" || val == "NaN")
        };
        assert!(ok, "malformed exposition line: {line:?}");
    }

    // ---- /health ------------------------------------------------------
    let (status, health) = http_get(&addr, "/health");
    assert!(status.contains("200"), "{status}");
    let hj = json::parse(&health).expect("health is valid JSON");
    assert!(hj.get("phase").is_some());
    assert_eq!(hj.get("run").and_then(json::Json::as_str), Some("itest"));
    assert!(hj.get("watchdog").is_some());

    // ---- /runs and /runs/<id> -----------------------------------------
    let (status, runs) = http_get(&addr, "/runs");
    assert!(status.contains("200"), "{status}");
    let rj = json::parse(&runs).expect("runs is valid JSON");
    match rj {
        json::Json::Arr(list) => {
            assert!(!list.is_empty());
            assert_eq!(list[0].get("name").and_then(json::Json::as_str), Some("r1"));
            assert_eq!(list[0].get("alerts").and_then(json::Json::as_f64), Some(1.0));
        }
        other => panic!("/runs should be an array, got {other:?}"),
    }
    let (status, run) = http_get(&addr, "/runs/r1");
    assert!(status.contains("200"), "{status}");
    let rj = json::parse(&run).expect("run detail is valid JSON");
    assert_eq!(rj.get("name").and_then(json::Json::as_str), Some("r1"));
    assert!(matches!(rj.get("losses"), Some(json::Json::Arr(l)) if l.len() == 1));
    let (status, _) = http_get(&addr, "/runs/no-such-run");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_get(&addr, "/bogus");
    assert!(status.contains("404"), "{status}");

    // ---- /events (SSE) ------------------------------------------------
    let mut stream = TcpStream::connect(&addr).expect("connect sse");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    // The tap is a registered sink, so a plain emit reaches the ring.
    traffic_obs::emit(
        &Event::new("epoch").with("model", "STGCN").with("epoch", 3u64).with("loss", 0.25),
    );
    traffic_obs::emit(&Event::new("metric").with("metric", "noise")); // filtered kind
    traffic_obs::emit(&Event::new("alert").with("rule", "step_stall").with("state", "raised"));
    let mut reader = BufReader::new(stream);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_epoch = false;
    let mut saw_alert = false;
    let mut saw_metric = false;
    let mut line = String::new();
    while Instant::now() < deadline && !(saw_epoch && saw_alert) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let l = line.trim_end();
                saw_epoch |= l == "event: epoch";
                saw_alert |= l == "event: alert";
                saw_metric |= l == "event: metric";
                if let Some(data) = l.strip_prefix("data: ") {
                    json::parse(data).expect("SSE data lines are valid JSON");
                }
            }
            Err(_) => break,
        }
    }
    assert!(saw_epoch, "epoch event must stream over /events");
    assert!(saw_alert, "alert event must stream over /events");
    assert!(!saw_metric, "metric snapshots are filtered from the stream");

    // ---- shutdown -----------------------------------------------------
    let t = Instant::now();
    drop(server); // joins accept loop + this open SSE connection
    assert!(t.elapsed() < Duration::from_secs(5), "server drop must join promptly");
    assert!(TcpStream::connect(&addr).is_err(), "listener must be closed after drop");
    std::fs::remove_dir_all(&dir).ok();
}
