//! Table II: characterisation of the eight models' spatial and temporal
//! modelling components.
//!
//! ```text
//! cargo run --release --example model_taxonomy
//! ```

use traffic_suite::core::render_table2;
use traffic_suite::models::MODEL_TAXONOMY;

fn main() {
    println!("== Table II: model taxonomy ==\n");
    print!("{}", render_table2());
    println!("\nDetails:");
    for m in &MODEL_TAXONOMY {
        println!("\n{}", m.name);
        println!("  spatial  {:?}: + {}", m.spatial, m.spatial.pros());
        println!("           - {}", m.spatial.cons());
        println!("  temporal {:?}: + {}", m.temporal, m.temporal.pros());
        println!("           - {}", m.temporal.cons());
    }
}
