#!/usr/bin/env bash
# Regenerates BENCH_gemm.json at the workspace root: seed-naive vs
# blocked vs blocked+pool GEMM on the batch-1 METR-LA graph-conv shape
# [207, 207] · [207, 64], and CSR vs dense spmm at 10% density.
#
# Usage:
#   scripts/bench_gemm.sh            # full run (stable best-of timings)
#   BENCH_SMOKE=1 scripts/bench_gemm.sh   # fast CI smoke pass
#
# TRAFFIC_THREADS caps the worker pool (default: all cores), e.g.:
#   TRAFFIC_THREADS=8 scripts/bench_gemm.sh
set -euo pipefail
cd "$(dirname "$0")/.."
cargo bench -p traffic-bench --bench gemm
echo
echo "--- BENCH_gemm.json ---"
cat BENCH_gemm.json
