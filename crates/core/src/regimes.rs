//! Traffic-regime error decomposition — the paper's future-work question
//! ("why does model performance differ by traffic data patterns?") made
//! measurable. Every (sample, horizon, sensor) cell of a test split is
//! classified into a regime, and metrics are reported per regime:
//!
//! - **FreeFlow**: value near the sensor's high quantile, low volatility;
//! - **Recurring**: congested but with low moving-std (daily rush hour);
//! - **Abrupt**: high moving-std (the paper's difficult intervals);
//! - **Missing**: zero-valued sensor dropouts (excluded from metrics).

use traffic_data::{moving_std, quantile, TrafficDataset, WindowedData, PAPER_WINDOW};
use traffic_metrics::{evaluate, MetricSet};
use traffic_tensor::Tensor;

/// Traffic regime of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Free-flowing traffic, stable.
    FreeFlow,
    /// Recurring congestion (predictable slowdowns).
    Recurring,
    /// Abruptly changing conditions (difficult intervals).
    Abrupt,
    /// Missing observation.
    Missing,
}

impl Regime {
    /// All reportable regimes (missing is excluded from metrics).
    pub const REPORTABLE: [Regime; 3] = [Regime::FreeFlow, Regime::Recurring, Regime::Abrupt];
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regime::FreeFlow => write!(f, "free-flow"),
            Regime::Recurring => write!(f, "recurring"),
            Regime::Abrupt => write!(f, "abrupt"),
            Regime::Missing => write!(f, "missing"),
        }
    }
}

/// Per-step regime labels `[T, N]` for a dataset.
///
/// A step is **Abrupt** when its moving-std is in the sensor's upper
/// quartile, **FreeFlow** when its value is above the sensor's 60th
/// percentile (speeds) — for flow data "free flow" means *low* flow, so
/// the comparison flips — and **Recurring** otherwise.
pub fn classify(dataset: &TrafficDataset) -> Vec<Regime> {
    let (t, n) = (dataset.num_steps(), dataset.num_nodes());
    let data = dataset.values.as_slice();
    let mut out = vec![Regime::Recurring; t * n];
    for i in 0..n {
        let series = dataset.node_series(i);
        let ms = moving_std(&series, PAPER_WINDOW);
        let valid: Vec<f32> = series.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        if valid.is_empty() {
            for k in 0..t {
                out[k * n + i] = Regime::Missing;
            }
            continue;
        }
        let abrupt_thresh = quantile(ms.as_slice(), 0.75);
        let level_thresh = quantile(&valid, 0.6);
        for k in 0..t {
            let v = data[k * n + i];
            out[k * n + i] = if v == 0.0 {
                Regime::Missing
            } else if ms.at(&[k]) >= abrupt_thresh {
                Regime::Abrupt
            } else {
                let free = match dataset.task {
                    traffic_data::Task::Speed => v >= level_thresh,
                    traffic_data::Task::Flow => v < level_thresh,
                };
                if free {
                    Regime::FreeFlow
                } else {
                    Regime::Recurring
                }
            };
        }
    }
    out
}

/// Builds a 0/1 mask `[S, T_out, N]` selecting the cells of one regime.
pub fn regime_mask(
    labels: &[Regime],
    dataset: &TrafficDataset,
    split: &WindowedData,
    regime: Regime,
) -> Tensor {
    let n = dataset.num_nodes();
    assert_eq!(labels.len(), dataset.num_steps() * n);
    let (s, t_out) = (split.len(), split.y_raw.shape()[1]);
    let mut out = vec![0.0f32; s * t_out * n];
    for (si, &start) in split.target_start.iter().enumerate() {
        for h in 0..t_out {
            let t = start + h;
            for i in 0..n {
                if labels[t * n + i] == regime {
                    out[(si * t_out + h) * n + i] = 1.0;
                }
            }
        }
    }
    Tensor::from_vec(out, &[s, t_out, n])
}

/// Metrics of one prediction set decomposed by regime.
pub fn decompose(
    pred: &Tensor,
    split: &WindowedData,
    dataset: &TrafficDataset,
) -> Vec<(Regime, MetricSet)> {
    let labels = classify(dataset);
    Regime::REPORTABLE
        .iter()
        .map(|&r| {
            let mask = regime_mask(&labels, dataset, split, r);
            (r, evaluate(pred, &split.y_raw, Some(&mask)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{eval_split, prepare_experiment, train_model};
    use crate::scale::ExperimentScale;
    use crate::trainer::predict;
    use traffic_data::{simulate, SimConfig, Task};

    #[test]
    fn classification_covers_all_steps() {
        let ds = simulate(&SimConfig::new("regime", Task::Speed, 6, 5));
        let labels = classify(&ds);
        assert_eq!(labels.len(), ds.num_steps() * 6);
        let mut counts = std::collections::HashMap::new();
        for l in &labels {
            *counts.entry(*l).or_insert(0usize) += 1;
        }
        // all three reportable regimes should be present in simulated data
        for r in Regime::REPORTABLE {
            assert!(counts.get(&r).copied().unwrap_or(0) > 0, "{r} missing");
        }
        // abrupt should be roughly a quarter (per-sensor upper quartile)
        let abrupt = counts[&Regime::Abrupt] as f32 / labels.len() as f32;
        assert!(abrupt > 0.15 && abrupt < 0.4, "abrupt fraction {abrupt}");
    }

    #[test]
    fn missing_values_are_labelled_missing() {
        let mut cfg = SimConfig::new("regime-miss", Task::Speed, 4, 4);
        cfg.missing_rate = 0.02;
        let ds = simulate(&cfg);
        let labels = classify(&ds);
        let data = ds.values.as_slice();
        for (k, &v) in data.iter().enumerate() {
            if v == 0.0 {
                assert_eq!(labels[k], Regime::Missing);
            }
        }
    }

    #[test]
    fn flow_freeflow_is_low_flow() {
        let ds = simulate(&SimConfig::new("regime-flow", Task::Flow, 8, 5));
        let labels = classify(&ds);
        let n = ds.num_nodes();
        // mean flow in FreeFlow cells should be below mean flow in Recurring
        let mut ff = (0.0f64, 0usize);
        let mut rc = (0.0f64, 0usize);
        for k in 0..ds.num_steps() {
            for i in 0..n {
                let v = ds.values.at(&[k, i]) as f64;
                match labels[k * n + i] {
                    Regime::FreeFlow => {
                        ff.0 += v;
                        ff.1 += 1;
                    }
                    Regime::Recurring => {
                        rc.0 += v;
                        rc.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(ff.0 / (ff.1 as f64) < rc.0 / (rc.1 as f64));
    }

    #[test]
    fn decomposition_orders_difficulty() {
        // Abrupt cells must be hardest for a trained model.
        let mut scale = ExperimentScale::smoke();
        scale.epochs = 3;
        scale.max_train_batches = Some(30);
        scale.max_test_samples = Some(80);
        let exp = prepare_experiment("METR-LA", &scale, 9);
        let (model, _) = train_model("Graph-WaveNet", &exp, &scale, 9);
        let test = eval_split(&exp.data.test, &scale);
        let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
        let rows = decompose(&pred, &test, &exp.dataset);
        let get = |r: Regime| rows.iter().find(|(x, _)| *x == r).unwrap().1;
        let abrupt = get(Regime::Abrupt);
        let free = get(Regime::FreeFlow);
        assert!(abrupt.count > 0 && free.count > 0);
        assert!(
            abrupt.mae > free.mae,
            "abrupt ({}) should be harder than free-flow ({})",
            abrupt.mae,
            free.mae
        );
    }
}
