//! Runs every experiment of the paper end-to-end and writes a markdown
//! report (the source of EXPERIMENTS.md) with measured tables, figure data,
//! and the paper-claim checklist.
//!
//! ```text
//! cargo run --release --example full_report -- --scale quick \
//!     [--out reports/EXPERIMENTS_generated.md] \
//!     [--datasets METR-LA,PeMSD8] [--models STGCN,Graph-WaveNet]
//! ```
//!
//! `--datasets` / `--models` restrict the sweeps to a comma-separated
//! subset (CI smokes); unknown names are ignored with a warning. The
//! sweeps run on the experiment scheduler: `TRAFFIC_JOBS=N` trains N
//! cells concurrently (default `cores/2`), `TRAFFIC_JOBS=1` is the
//! legacy serial path, and the rows are bit-identical either way.

use std::fmt::Write as _;
use std::path::PathBuf;

use traffic_suite::core::{
    case_study, check_fig1, check_fig1_flow, check_fig2, check_table3, computation_time,
    difficult_interval_experiment, fig1_winners, model_comparison, render_fig3, render_findings,
};
use traffic_suite::data::DATASETS;
use traffic_suite::models::ALL_MODELS;
use traffic_suite::scale_from_args;

fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    writeln!(out, "| {} |", headers.join(" | ")).unwrap();
    writeln!(out, "|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")).unwrap();
    for r in rows {
        writeln!(out, "| {} |", r.join(" | ")).unwrap();
    }
    out
}

/// `--flag a,b,c` as a subset filter over `all` (order preserved from
/// `all`); `None` when the flag is absent.
fn subset_arg(flag: &str, all: &[&'static str]) -> Option<Vec<&'static str>> {
    let raw = std::env::args().skip_while(|a| a != flag).nth(1)?;
    let wanted: Vec<String> =
        raw.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    for w in &wanted {
        if !all.contains(&w.as_str()) {
            eprintln!("full_report: {flag} ignores unknown name {w:?}");
        }
    }
    Some(all.iter().copied().filter(|n| wanted.iter().any(|w| w == n)).collect())
}

fn main() {
    let scale = scale_from_args();
    let out_path: PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| "reports/EXPERIMENTS_generated.md".into());

    let mut md = String::new();
    writeln!(md, "# Measured results (auto-generated)\n").unwrap();
    writeln!(
        md,
        "Scale: {:.0}% of Table I dimensions, {} epochs, batch {}, {} repeat(s), \
         ≤{:?} train batches/epoch, ≤{:?} test samples.\n",
        scale.dataset_scale * 100.0,
        scale.epochs,
        scale.batch_size,
        scale.repeats,
        scale.max_train_batches,
        scale.max_test_samples
    )
    .unwrap();

    let all_datasets: Vec<&'static str> = DATASETS.iter().map(|d| d.name).collect();
    let dataset_names =
        subset_arg("--datasets", &all_datasets).unwrap_or_else(|| all_datasets.clone());
    let models = subset_arg("--models", &ALL_MODELS).unwrap_or_else(|| ALL_MODELS.to_vec());

    // ---------------- Table III ----------------
    eprintln!("[1/4] Table III: computation time ({} models on METR-LA)…", models.len());
    let t3 = computation_time(&models, &scale);
    let rows: Vec<Vec<String>> = t3
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2}", r.train_time_per_epoch.as_secs_f64()),
                format!("{:.2}", r.inference_time.as_secs_f64()),
                r.params.to_string(),
            ]
        })
        .collect();
    writeln!(md, "## Table III — computation time (METR-LA, measured)\n").unwrap();
    md.push_str(&md_table(&["Model", "Train s/epoch", "Inference s", "# params"], &rows));
    md.push('\n');
    md.push_str(&render_findings(&check_table3(&t3)));
    md.push('\n');

    // ---------------- Fig 1 ----------------
    eprintln!(
        "[2/4] Fig 1: model comparison ({} datasets × {} models)…",
        dataset_names.len(),
        models.len()
    );
    let f1 = model_comparison(&dataset_names, &models, &scale);
    writeln!(md, "## Fig 1 — accuracy (mean ± std over {} repeat(s))\n", scale.repeats).unwrap();
    let rows: Vec<Vec<String>> = f1
        .iter()
        .map(|r| match &r.error {
            Some(reason) => vec![
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                format!("FAILED: {reason}"),
                "—".into(),
                "—".into(),
            ],
            None => vec![
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                format!("{:.3} ± {:.3}", r.mae.0, r.mae.1),
                format!("{:.3} ± {:.3}", r.rmse.0, r.rmse.1),
                format!("{:.2} ± {:.2}", r.mape.0, r.mape.1),
            ],
        })
        .collect();
    md.push_str(&md_table(&["Dataset", "Model", "Horizon", "MAE", "RMSE", "MAPE %"], &rows));
    md.push('\n');
    writeln!(md, "### Winners per dataset × horizon\n").unwrap();
    let winner_rows: Vec<Vec<String>> = fig1_winners(&f1)
        .into_iter()
        .map(|(d, h, m, mae)| vec![d, h.to_string(), m, format!("{mae:.3}")])
        .collect();
    md.push_str(&md_table(&["Dataset", "Horizon", "Best model", "MAE"], &winner_rows));
    md.push('\n');
    md.push_str(&render_findings(&check_fig1(&f1)));
    md.push_str(&render_findings(&check_fig1_flow(&f1)));
    md.push('\n');

    // ---------------- Fig 2 ----------------
    eprintln!("[3/4] Fig 2: difficult intervals (METR-LA)…");
    let f2 = difficult_interval_experiment("METR-LA", &models, &scale);
    writeln!(md, "## Fig 2 — difficult intervals (METR-LA)\n").unwrap();
    let rows: Vec<Vec<String>> = f2
        .iter()
        .map(|r| match &r.error {
            Some(reason) => {
                vec![r.model.clone(), format!("FAILED: {reason}"), "—".into(), "—".into()]
            }
            None => vec![
                r.model.clone(),
                format!("{:.3}", r.overall.mae),
                format!("{:.3}", r.difficult.mae),
                format!("{:+.1}", r.degradation_pct),
            ],
        })
        .collect();
    md.push_str(&md_table(&["Model", "Overall MAE", "Difficult MAE", "Degradation %"], &rows));
    md.push('\n');
    md.push_str(&render_findings(&check_fig2(&f2)));
    md.push('\n');

    // ---------------- Fig 3 ----------------
    eprintln!("[4/4] Fig 3: case study (Graph-WaveNet on PeMS-BAY)…");
    // Panic-isolated like the sweep cells: a crashing case study still
    // yields a report with the three completed sections.
    let cs = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case_study(&scale)));
    writeln!(md, "## Fig 3 — case study\n").unwrap();
    match cs {
        Ok(cs) => {
            writeln!(md, "```text\n{}```\n", render_fig3(&cs)).unwrap();
            writeln!(
                md,
                "MAE ratio volatile/smooth: **{:.2}×** (paper's example pair: 4.5×)\n",
                cs.volatile.mae / cs.smooth.mae
            )
            .unwrap();
        }
        Err(payload) => {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            writeln!(md, "**FAILED**: {reason}\n").unwrap();
        }
    }

    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&out_path, &md).expect("write report");
    println!("{md}");
    eprintln!("wrote {}", out_path.display());
}
