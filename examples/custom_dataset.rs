//! Using the library on your own data: build a road network by hand,
//! simulate (or substitute) a series, run the full pipeline with
//! crash-safe checkpointing, and persist everything to CSV.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```
//!
//! The training step doubles as a kill-and-resume demo: a soft fault is
//! armed that panics mid-epoch 2, the panic is caught, and a second
//! `train` call picks up from the epoch-1 `TrainState` checkpoint.

use traffic_suite::core::{predict, train, TrainConfig};
use traffic_suite::data::{prepare, save_dataset, simulate, SimConfig, Task, TrafficDataset};
use traffic_suite::metrics::evaluate;
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::obs::faults::{self, FaultMode};
use traffic_suite::tensor::Tensor;

fn main() {
    // 1. Hand-built 6-sensor ring road.
    let mut net = traffic_suite::graph::RoadNetwork::new();
    for i in 0..6 {
        let angle = i as f64 * std::f64::consts::TAU / 6.0;
        net.add_sensor(i, 2.0 * angle.cos(), 2.0 * angle.sin());
    }
    for i in 0..6 {
        let j = (i + 1) % 6;
        let d = net.euclidean(i, j).max(0.1);
        net.add_edge(i, j, d);
        net.add_edge(j, i, d);
    }
    println!("ring road: {} sensors, {} directed edges", net.num_nodes(), net.num_edges());

    // 2. A synthetic series for it (you would load your own here). We reuse
    //    the simulator's dynamics on a same-sized corridor, then attach the
    //    ring topology.
    let sim = simulate(&SimConfig::new("ring-city", Task::Speed, 6, 10));
    let dataset = TrafficDataset {
        name: "ring-city".into(),
        task: Task::Speed,
        network: net,
        values: sim.values.clone(),
        includes_weekends: true,
    };

    // 3. Persist + reload (CSV round trip).
    let dir = std::path::Path::new("reports/custom");
    let path = save_dataset(&dataset, dir).expect("save");
    println!("saved to {}", path.display());
    let reloaded = traffic_suite::data::load_dataset(&path).expect("load");
    assert_eq!(reloaded.num_nodes(), 6);

    // 4. Train any model on it, checkpointing a full TrainState (weights,
    //    Adam moments, RNG, counters) after every epoch.
    let data = prepare(&reloaded, 12, 12);
    let ctx = GraphContext::from_network(&reloaded.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let model = build_model("STG2Seq", &ctx, &mut rng);
    let ckpt = std::path::PathBuf::from("reports/custom/stg2seq.tnn2");
    let _ = std::fs::remove_file(&ckpt); // always demo a fresh run
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        max_batches_per_epoch: Some(40),
        early_stop_patience: Some(2),
        checkpoint_every: Some(1),
        checkpoint_path: Some(ckpt.clone()),
        resume_from: Some(ckpt.clone()),
        ..Default::default()
    };

    // 4a. Simulate a crash: batch 50 lands mid-epoch 2, after the epoch-1
    //     checkpoint is on disk. Soft mode panics instead of aborting so we
    //     can catch it in-process and carry on.
    faults::arm("abort", 50, FaultMode::Soft);
    let quiet: Box<dyn Fn(&std::panic::PanicHookInfo) + Send + Sync> = Box::new(|_| {});
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(quiet);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train(model.as_ref(), &data, &cfg)
    }));
    std::panic::set_hook(prev_hook);
    faults::reset();
    assert!(crashed.is_err(), "armed fault should have interrupted training");
    println!("training crashed mid-epoch 2 (injected fault) — checkpoint survives");

    // 4b. Resume: same config, same checkpoint path. The trainer restores
    //     the full state and replays from epoch 2.
    let report = train(model.as_ref(), &data, &cfg);
    assert!(report.resumed_at.is_some(), "second run should resume from the checkpoint");
    println!("resumed at epoch {} from {}", report.resumed_at.unwrap(), ckpt.display());
    println!(
        "trained STG2Seq: losses {:?} (best epoch {})",
        report.epoch_losses.iter().map(|l| format!("{l:.3}")).collect::<Vec<_>>(),
        report.best_epoch + 1
    );

    // 5. Evaluate.
    let test = data.test.truncate(100);
    let pred = predict(model.as_ref(), &test, &data.scaler, 16);
    let m = evaluate(&pred, &test.y_raw, None);
    println!("test metrics: {m}");

    // 6. Inspect one window's forecast.
    let sample: Vec<f32> = (0..12).map(|h| pred.at(&[0, h, 0])).collect();
    let truth: Vec<f32> = (0..12).map(|h| test.y_raw.at(&[0, h, 0])).collect();
    println!("sensor 0, first window:");
    println!("  truth    {truth:.1?}");
    println!("  forecast {sample:.1?}");
    let _ = Tensor::zeros(&[1]); // keep tensor API in scope for doc purposes
}
