//! `insight` — cross-run analytics CLI over `reports/runs/*.jsonl`.
//!
//! ```text
//! insight list  [--dir reports/runs]
//! insight show  <run> [--dir reports/runs]
//! insight diff  <base> <cand> [--tol 0.05] [--dir reports/runs]
//! insight html  <run> [--baseline <run>] [--out reports/insight] [--dir reports/runs]
//! ```
//!
//! `diff` exits 1 when any leaf regressed beyond the tolerance (so CI
//! can gate on it) and 2 on usage errors. `html` writes a fully
//! self-contained dashboard to `<out>/<run>.html`.

use std::process::ExitCode;

use traffic_obs::store::{diff, RunStore, RunSummary};
use traffic_obs::{html, sparkline};

const DEFAULT_DIR: &str = "reports/runs";
const DEFAULT_OUT: &str = "reports/insight";
const DEFAULT_TOL: f64 = 0.05;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut dir = DEFAULT_DIR.to_string();
    let mut out = DEFAULT_OUT.to_string();
    let mut baseline: Option<String> = None;
    let mut tol = DEFAULT_TOL;

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--dir" => match take_value(&mut i) {
                Some(v) => dir = v,
                None => return usage("--dir needs a value"),
            },
            "--out" => match take_value(&mut i) {
                Some(v) => out = v,
                None => return usage("--out needs a value"),
            },
            "--baseline" => match take_value(&mut i) {
                Some(v) => baseline = Some(v),
                None => return usage("--baseline needs a value"),
            },
            "--tol" => match take_value(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => tol = v,
                None => return usage("--tol needs a number"),
            },
            "-h" | "--help" => return usage(""),
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag {flag}"));
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }

    let Some((&cmd, rest)) = positional.split_first() else {
        return usage("missing subcommand");
    };
    match cmd {
        "list" => cmd_list(&dir),
        "show" => match rest {
            [run] => cmd_show(&dir, run),
            _ => usage("show takes exactly one run name"),
        },
        "diff" => match rest {
            [base, cand] => cmd_diff(&dir, base, cand, tol),
            _ => usage("diff takes exactly two run names"),
        },
        "html" => match rest {
            [run] => cmd_html(&dir, run, baseline.as_deref(), &out),
            _ => usage("html takes exactly one run name"),
        },
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("insight: {err}\n");
    }
    eprintln!(
        "usage:\n  insight list  [--dir {DEFAULT_DIR}]\n  \
         insight show  <run> [--dir {DEFAULT_DIR}]\n  \
         insight diff  <base> <cand> [--tol {DEFAULT_TOL}] [--dir {DEFAULT_DIR}]\n  \
         insight html  <run> [--baseline <run>] [--out {DEFAULT_OUT}] [--dir {DEFAULT_DIR}]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn open_store(dir: &str) -> Result<RunStore, ExitCode> {
    RunStore::index(dir).map_err(|e| {
        eprintln!("insight: cannot index {dir}/: {e}");
        ExitCode::FAILURE
    })
}

fn load(dir: &str, run: &str) -> Result<RunSummary, ExitCode> {
    let store = open_store(dir)?;
    match store.get(run) {
        Some(summary) => Ok(summary.clone()),
        None => {
            eprintln!("insight: no run named `{run}` under {dir}/");
            if store.runs().is_empty() {
                eprintln!("insight: (no manifests found at all — is the directory right?)");
            } else {
                eprintln!("insight: available runs:");
                for r in store.runs().iter().take(10) {
                    eprintln!("  {}", r.name);
                }
            }
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_list(dir: &str) -> ExitCode {
    let store = match open_store(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if store.runs().is_empty() {
        println!("no run manifests under {dir}/");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<32} {:>8} {:>9} {:>7} {:>7}  loss",
        "run (newest first)", "events", "wall_s", "epochs", "blame"
    );
    for run in store.runs() {
        let losses: Vec<f32> = run.epochs.iter().map(|e| e.loss as f32).collect();
        let final_loss =
            losses.last().map_or("-".to_string(), |l| format!("{l:.4} {}", sparkline(&losses)));
        println!(
            "{:<32} {:>8} {:>9} {:>7} {:>7}  {}",
            run.name,
            run.events,
            run.wall_s.map_or("-".to_string(), |w| format!("{w:.1}")),
            run.epochs.len(),
            if run.blame.is_empty() { "-".to_string() } else { run.blame.len().to_string() },
            final_loss
        );
    }
    ExitCode::SUCCESS
}

fn cmd_show(dir: &str, run: &str) -> ExitCode {
    let summary = match load(dir, run) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("run     {}", summary.name);
    println!("path    {}", summary.path.display());
    println!("git     {}", summary.git);
    println!("threads {}", summary.threads);
    match summary.wall_s {
        Some(w) => println!("wall    {w:.2}s"),
        None => println!("wall    (no run_end — crashed or still running)"),
    }
    print!("events  {}", summary.events);
    for (kind, n) in &summary.event_counts {
        print!("  {kind}:{n}");
    }
    println!();
    if summary.malformed > 0 {
        println!("warning {} malformed manifest lines", summary.malformed);
    }
    for model in summary.models() {
        let losses: Vec<f32> =
            summary.epochs.iter().filter(|e| e.model == model).map(|e| e.loss as f32).collect();
        if let (Some(first), Some(last)) = (losses.first(), losses.last()) {
            println!(
                "loss    {model}: {first:.4} → {last:.4} over {} epochs {}",
                losses.len(),
                sparkline(&losses)
            );
        }
    }
    if !summary.insight.is_empty() {
        println!(
            "insight {} samples across {} layers",
            summary.insight.len(),
            summary.insight_groups().len()
        );
    }
    if !summary.sys.is_empty() {
        let peak = summary.sys.iter().map(|p| p.rss_bytes).fold(0.0f64, f64::max);
        println!(
            "system  {} samples, peak RSS {:.0} MB",
            summary.sys.len(),
            peak / (1024.0 * 1024.0)
        );
    }
    for b in summary.blame.iter().filter(|b| b.rank == 0) {
        println!(
            "blame   {} at epoch {} step {}: {}{}",
            b.reason,
            b.epoch,
            b.step,
            b.group,
            if b.non_finite { " (non-finite grads)" } else { "" }
        );
    }
    let comparable = summary.comparable();
    println!(
        "leaves  {} comparable metrics (use `insight diff` against another run)",
        comparable.len()
    );
    ExitCode::SUCCESS
}

fn cmd_diff(dir: &str, base: &str, cand: &str, tol: f64) -> ExitCode {
    let (base, cand) = match (load(dir, base), load(dir, cand)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let d = diff(&base, &cand, tol);
    print!("{}", d.render());
    if d.regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_html(dir: &str, run: &str, baseline: Option<&str>, out: &str) -> ExitCode {
    let summary = match load(dir, run) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let base = match baseline {
        Some(name) => match load(dir, name) {
            Ok(s) => Some(s),
            Err(code) => return code,
        },
        None => None,
    };
    match html::export(&summary, base.as_ref(), out) {
        Ok(path) => {
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("insight: cannot write dashboard: {e}");
            ExitCode::FAILURE
        }
    }
}
