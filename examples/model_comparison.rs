//! Fig 1: accuracy comparison of all eight models across the seven
//! datasets at 15/30/60-minute horizons. Writes a CSV next to the text
//! report.
//!
//! ```text
//! cargo run --release --example model_comparison [-- --scale smoke|quick] \
//!     [-- --datasets METR-LA,PeMSD8] [-- --models Graph-WaveNet,GMAN]
//! ```

use std::path::Path;

use traffic_suite::core::{fig1_csv_rows, model_comparison, render_fig1, write_csv};
use traffic_suite::data::DATASETS;
use traffic_suite::models::ALL_MODELS;
use traffic_suite::scale_from_args;

fn list_arg(flag: &str, default: Vec<String>) -> Vec<String> {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_args();
    let datasets = list_arg("--datasets", DATASETS.iter().map(|d| d.name.to_string()).collect());
    let models = list_arg("--models", ALL_MODELS.iter().map(|m| m.to_string()).collect());
    let ds_refs: Vec<&str> = datasets.iter().map(|s| &**s).collect();
    let m_refs: Vec<&str> = models.iter().map(|s| &**s).collect();
    println!(
        "== Fig 1: model comparison ({} datasets × {} models × 3 horizons, {} repeat(s)) ==\n",
        ds_refs.len(),
        m_refs.len(),
        scale.repeats
    );
    let rows = model_comparison(&ds_refs, &m_refs, &scale);
    print!("{}", render_fig1(&rows));
    let (headers, csv) = fig1_csv_rows(&rows);
    let out = Path::new("reports/fig1_model_comparison.csv");
    match write_csv(out, &headers, &csv) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
