//! Background system sampler: a low-priority thread that periodically
//! emits `sys` events (RSS, CPU utilization, compute-pool queue depth,
//! mem-pool hit rate) so long runs leave a system-level time series in
//! their manifest next to the training telemetry.
//!
//! Off by default. Enabled per run via [`crate::RunBuilder::system_sampler`]
//! or globally with `TRAFFIC_SYS_SAMPLE_MS=<interval>` (0/unset = off).
//! The sampler is RAII: dropping the handle stops and joins the thread,
//! which checks its stop flag every few milliseconds so shutdown never
//! waits a full interval.
//!
//! Process stats come straight from procfs (`/proc/self/statm`,
//! `/proc/self/stat`) with no subprocess; on platforms without procfs
//! the thread parks itself and emits nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::event::Event;
use crate::metrics::{counter, gauge};

/// Kernel clock ticks per second (`USER_HZ`); fixed at 100 on every
/// Linux ABI we target.
const TICKS_PER_SEC: f64 = 100.0;

/// Stop-flag poll interval while sleeping between samples.
const POLL: Duration = Duration::from_millis(10);

/// One procfs reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcStat {
    /// Resident set size in bytes (`statm` field 2 × page size).
    pub rss_bytes: u64,
    /// Cumulative CPU time of the process in clock ticks
    /// (`stat` utime + stime).
    pub cpu_ticks: u64,
}

/// Reads the current process stats from procfs (`None` off-Linux or on
/// a parse failure).
pub fn read_proc_stat() -> Option<ProcStat> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    parse_proc_stat(&statm, &stat)
}

/// Pure parse of `/proc/self/statm` + `/proc/self/stat` contents
/// (factored out of [`read_proc_stat`] so edge cases — parenthesised
/// comm names with spaces, truncated files — are testable on fixture
/// strings).
fn parse_proc_stat(statm: &str, stat: &str) -> Option<ProcStat> {
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // The comm field is parenthesised and may contain spaces; fields
    // after the last ')' are whitespace-separated, starting with the
    // state char (field 3 of the 1-based stat layout).
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?; // stat field 14
    let stime: u64 = fields.next()?.parse().ok()?; // stat field 15
    Some(ProcStat { rss_bytes: resident_pages * 4096, cpu_ticks: utime + stime })
}

/// CPU utilization in cores from two consecutive readings: tick delta
/// over `USER_HZ` over wall delta. Zero when no time passed or the
/// tick counter did not advance (including counter weirdness across a
/// checkpoint restore, which `saturating_sub` absorbs).
fn cpu_util(prev: &ProcStat, cur: &ProcStat, dt_secs: f64) -> f64 {
    if dt_secs <= 0.0 {
        return 0.0;
    }
    cur.cpu_ticks.saturating_sub(prev.cpu_ticks) as f64 / TICKS_PER_SEC / dt_secs
}

/// Sampling interval from `TRAFFIC_SYS_SAMPLE_MS` (`None` = disabled).
pub fn interval_from_env() -> Option<Duration> {
    std::env::var("TRAFFIC_SYS_SAMPLE_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// RAII handle to the sampler thread (see module docs).
pub struct SysSampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SysSampler {
    /// Spawns the sampler thread; the first sample is emitted
    /// immediately, then one per `interval`.
    pub fn start(interval: Duration) -> SysSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("traffic-sysmon".into())
            .spawn(move || sampler_loop(interval, &flag))
            .ok();
        SysSampler { stop, handle }
    }
}

impl Drop for SysSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn sampler_loop(interval: Duration, stop: &AtomicBool) {
    let mut prev: Option<(ProcStat, Instant)> = None;
    loop {
        let stat = read_proc_stat();
        if let Some(stat) = stat {
            let now = Instant::now();
            // CPU utilization in cores (may exceed 1.0 with the compute
            // pool active); 0 for the first sample, which has no delta.
            let util = match prev {
                Some((p, t)) => cpu_util(&p, &stat, now.duration_since(t).as_secs_f64()),
                None => 0.0,
            };
            prev = Some((stat, now));
            emit_sample(&stat, util);
        }
        // The watchdog shares the sampler cadence (and still ticks when
        // procfs is absent — step-stall needs no /proc).
        crate::watch::tick(stat.as_ref());
        // Sleep one interval, polling the stop flag so drop is prompt.
        let wake = Instant::now() + interval;
        while Instant::now() < wake {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(POLL.min(interval));
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

fn emit_sample(stat: &ProcStat, cpu_util: f64) {
    let hits = counter("mem/pool_hits").get();
    let misses = counter("mem/pool_misses").get();
    let total = hits + misses;
    let hit_rate = if total > 0 { hits as f64 / total as f64 } else { 0.0 };
    // Gauges keep the latest reading in the run's metrics summary even
    // when no sink consumed the time series.
    gauge("sys/rss_bytes").set(stat.rss_bytes as f64);
    gauge("sys/cpu_util").set(cpu_util);
    crate::emit_with(|| {
        Event::new("sys")
            .with("rss_bytes", stat.rss_bytes)
            .with("cpu_util", cpu_util)
            .with("queue_depth", gauge("compute/pool_queue_depth").get())
            .with("pool_hit_rate", hit_rate)
            .with("pool_hits", hits)
            .with("pool_misses", misses)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_stat_reads_on_linux() {
        if !std::path::Path::new("/proc/self/statm").exists() {
            return; // not procfs — nothing to assert
        }
        let s = read_proc_stat().expect("procfs readable");
        assert!(s.rss_bytes > 0);
        // Burn a little CPU so ticks are plausibly non-decreasing.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let s2 = read_proc_stat().expect("procfs readable");
        assert!(s2.cpu_ticks >= s.cpu_ticks);
    }

    #[test]
    fn parses_comm_names_containing_spaces_and_parens() {
        // Field 2 of stat is the comm name in parentheses — it may
        // itself contain spaces and ')' (kernel threads, renamed
        // processes), so field splitting must anchor on the LAST ')'.
        let statm = "12345 678 90 1 0 2 0\n";
        let stat = "4242 (traffic live) worker) S 1 4242 4242 0 -1 4194304 \
                    100 0 0 0 7 3 0 0 20 0 8 0 100 0 0 18446744073709551615\n";
        let s = parse_proc_stat(statm, stat).expect("spaced comm parses");
        assert_eq!(s.rss_bytes, 678 * 4096);
        assert_eq!(s.cpu_ticks, 7 + 3);
    }

    #[test]
    fn truncated_stat_yields_none_not_panic() {
        let statm = "12345 678 90\n";
        // Torn read: file ends inside the comm field (no closing paren).
        assert_eq!(parse_proc_stat(statm, "4242 (traffic li"), None);
        // Closing paren present but the line stops before utime/stime.
        assert_eq!(parse_proc_stat(statm, "4242 (x) S 1 4242 4242 0 -1"), None);
        // Empty file.
        assert_eq!(parse_proc_stat(statm, ""), None);
    }

    #[test]
    fn missing_statm_fields_yield_none() {
        let stat = "1 (x) S 1 1 1 0 -1 0 0 0 0 0 5 5 0 0 20 0 1 0 1 0 0 1\n";
        assert_eq!(parse_proc_stat("", stat), None, "empty statm");
        assert_eq!(parse_proc_stat("12345", stat), None, "statm missing resident field");
        assert_eq!(parse_proc_stat("12345 not-a-number 1", stat), None, "non-numeric resident");
        assert!(parse_proc_stat("12345 678", stat).is_some(), "two fields suffice");
    }

    #[test]
    fn zero_tick_and_zero_time_deltas_report_zero_util() {
        let a = ProcStat { rss_bytes: 1 << 20, cpu_ticks: 100 };
        let b = ProcStat { rss_bytes: 1 << 20, cpu_ticks: 100 };
        assert_eq!(cpu_util(&a, &b, 0.5), 0.0, "no ticks consumed");
        let c = ProcStat { rss_bytes: 1 << 20, cpu_ticks: 150 };
        assert_eq!(cpu_util(&a, &c, 0.0), 0.0, "zero wall delta must not divide by zero");
        assert_eq!(cpu_util(&a, &c, -1.0), 0.0, "clock weirdness reports idle");
        // Counter going backwards (restored checkpoint) saturates to 0.
        assert_eq!(cpu_util(&c, &a, 0.5), 0.0);
        // And the healthy case: 50 ticks over 0.5 s = 1 core.
        assert_eq!(cpu_util(&a, &c, 0.5), 1.0);
    }

    #[test]
    fn sampler_stops_promptly() {
        let sampler = SysSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        let t = Instant::now();
        drop(sampler);
        assert!(t.elapsed() < Duration::from_secs(2), "drop must join promptly");
    }
}
