//! Shared model interface: every architecture maps a `[B, T_in, N, C]`
//! window to `[B, T_out, N]` predictions on the normalised scale.

use rand::rngs::StdRng;
use traffic_graph::{
    diffusion_supports, gaussian_adjacency, row_normalize, scaled_laplacian, spectral_embedding,
    symmetrize, RoadNetwork,
};
use traffic_nn::ParamStore;
use traffic_tensor::{Tape, Tensor, Var};

use crate::meta::ModelMeta;

/// Pre-computed graph material shared by all models for one dataset.
#[derive(Clone)]
pub struct GraphContext {
    /// Number of sensors.
    pub n: usize,
    /// Gaussian-kernel weighted adjacency (directed, self-loops).
    pub adjacency: Tensor,
    /// Rescaled Chebyshev Laplacian `L̃` (spectral GCNs).
    pub scaled_laplacian: Tensor,
    /// Forward/backward random-walk transitions (diffusion GCNs).
    pub supports: Vec<Tensor>,
    /// Row-normalised symmetric adjacency (dense GCNs).
    pub row_norm_adj: Tensor,
    /// Spectral node embedding `[N, se_dim]` (GMAN, ST-MetaNet meta
    /// knowledge).
    pub node_embedding: Tensor,
}

impl GraphContext {
    /// Builds every matrix from a road network. `se_dim` sizes the node
    /// embedding.
    pub fn from_network(net: &RoadNetwork, se_dim: usize) -> Self {
        let adjacency = gaussian_adjacency(net, 0.05);
        GraphContext {
            n: net.num_nodes(),
            scaled_laplacian: scaled_laplacian(&adjacency),
            supports: diffusion_supports(&adjacency),
            row_norm_adj: row_normalize(&symmetrize(&adjacency)),
            node_embedding: spectral_embedding(&adjacency, se_dim),
            adjacency,
        }
    }
}

/// Extra context available during training forward passes.
pub struct TrainCtx<'a> {
    /// RNG for dropout masks and scheduled-sampling coin flips.
    pub rng: &'a mut StdRng,
    /// Normalised ground-truth targets `[B, T_out, N]` for scheduled
    /// sampling (seq2seq models).
    pub teacher: Option<&'a Tensor>,
    /// Probability of feeding ground truth instead of the model's own
    /// prediction at each decoder step.
    pub teacher_prob: f32,
}

/// The common model interface.
pub trait TrafficModel {
    /// Model name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Table II taxonomy entry.
    fn meta(&self) -> ModelMeta;

    /// The parameter store (for optimizers and the Table III param count).
    fn store(&self) -> &ParamStore;

    /// Forward pass: `x` is `[B, T_in, N, C]`, returns `[B, T_out, N]`
    /// (z-scored scale). `train` is `None` during evaluation.
    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t>;

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize {
        self.store().num_scalars()
    }
}

/// Helper: `[B, T, N, C] -> [B, C, N, T]` (conv layout).
pub fn to_conv_layout<'t>(x: Var<'t>) -> Var<'t> {
    x.permute(&[0, 3, 2, 1])
}

/// Helper: `[B, C, N, T] -> [B, T, N, C]`.
pub fn from_conv_layout<'t>(x: Var<'t>) -> Var<'t> {
    x.permute(&[0, 3, 2, 1])
}

/// Advances a `[B]`-like time-of-day feature by one 5-minute step
/// (used by autoregressive rollouts to extend the input window).
pub fn advance_time_of_day(t: f32) -> f32 {
    let next = t + 1.0 / crate::STEPS_PER_DAY as f32;
    if next >= 1.0 {
        next - 1.0
    } else {
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    #[test]
    fn graph_context_builds_consistent_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = freeway_corridor(10, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 4);
        assert_eq!(ctx.n, 10);
        assert_eq!(ctx.adjacency.shape(), &[10, 10]);
        assert_eq!(ctx.scaled_laplacian.shape(), &[10, 10]);
        assert_eq!(ctx.supports.len(), 2);
        assert_eq!(ctx.row_norm_adj.shape(), &[10, 10]);
        assert_eq!(ctx.node_embedding.shape(), &[10, 4]);
        assert!(!ctx.scaled_laplacian.has_non_finite());
        assert!(!ctx.node_embedding.has_non_finite());
    }

    #[test]
    fn layout_roundtrip() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::arange(2 * 3 * 4 * 5).reshape(&[2, 3, 4, 5]));
        let y = from_conv_layout(to_conv_layout(x));
        assert_eq!(y.value(), x.value());
    }

    #[test]
    fn tod_advance_wraps() {
        assert!((advance_time_of_day(0.0) - 1.0 / 288.0).abs() < 1e-6);
        let last = 287.0 / 288.0;
        assert!(advance_time_of_day(last).abs() < 1e-6);
    }
}
