//! Minimal HTTP/1.1 front-end for the serving engine.
//!
//! Same zero-dependency construction as the telemetry server
//! ([`traffic_obs::live`]) — std `TcpListener`, non-blocking accept
//! loop, thread per connection — extended with `POST` + body parsing,
//! which the GET-only telemetry server never needed.
//!
//! | route | method | semantics |
//! |---|---|---|
//! | `/predict` | POST | `{"window":[…], "tod":f, "deadline_ms":n}` → prediction |
//! | `/reload`  | POST | optional `{"path":"…"}` → validate-then-swap |
//! | `/status`  | GET  | engine status JSON (degradation ladder state) |
//! | `/`        | GET  | route index |
//!
//! Status mapping: `OK`/`DEGRADED` → 200 (degradation is a successful
//! answer with provenance), `SHED` → 503 (retry elsewhere/later),
//! `TIMEOUT` → 504, malformed input → 400, `ERROR` → 500 (request
//! admitted under a geometry a hot reload then changed, or the serve
//! worker is down — terminal either way, the body says which). A
//! reload that is rejected answers 409 — the server is still healthy
//! on last-good weights.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use traffic_obs::json::{self, Json};
use traffic_obs::{counter, elapsed_ns};

use crate::engine::{Engine, EngineStatus};
use crate::queue::{ServeRequest, ServeResponse};

const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// RAII HTTP server: dropping it stops the accept loop and joins every
/// connection thread. The engine it fronts is shared, not owned — the
/// same engine can serve HTTP and in-process callers at once.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

struct Ctx {
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 picks a free port) and serves `engine`.
    pub fn start(addr: &str, engine: Arc<Engine>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx { engine, stop: Arc::clone(&stop), conns: Mutex::new(Vec::new()) });
        // A spawn failure must fail start(): an HttpServer whose accept
        // thread never launched would look started but serve nothing.
        let accept = std::thread::Builder::new()
            .name("traffic-serve-http".into())
            .spawn(move || accept_loop(listener, ctx))?;
        Ok(HttpServer { addr, stop, accept: Some(accept) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>) {
    loop {
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counter("serve/http_requests").inc();
                let conn_ctx = Arc::clone(&ctx);
                let handle = std::thread::Builder::new()
                    .name("traffic-serve-conn".into())
                    .spawn(move || handle_conn(stream, &conn_ctx))
                    .ok();
                if let Some(h) = handle {
                    let mut conns = ctx.conns.lock().unwrap_or_else(|e| e.into_inner());
                    conns.retain(|c| !c.is_finished());
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    let handles = std::mem::take(&mut *ctx.conns.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
}

/// One parsed request: method, path, body.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads head + `Content-Length` body. Bounded at 1 MiB so a hostile
/// client can't balloon memory; bounded by socket timeouts so a stalled
/// one can't pin the thread.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut first = head.lines().next()?.split_whitespace();
    let method = first.next()?.to_string();
    let path = first.next()?;
    let path = path.split('?').next().unwrap_or(path).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length").then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    if content_length > 1024 * 1024 {
        return None;
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    body.truncate(content_length);
    Some(Request { method, path, body: String::from_utf8_lossy(&body).to_string() })
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_conn(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Some(req) = read_request(&mut stream) else {
        return;
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => match parse_predict(&req.body, &ctx.engine.status()) {
            Ok(serve_req) => {
                let resp = ctx.engine.predict(serve_req);
                let (code, body) = render_response(&resp);
                respond(&mut stream, code, &body);
            }
            Err(msg) => respond(
                &mut stream,
                400,
                &format!("{{\"status\":\"ERROR\",\"error\":{}}}", json_str(&msg)),
            ),
        },
        ("POST", "/reload") => {
            let path: Option<PathBuf> = json::parse(&req.body)
                .ok()
                .and_then(|j| j.get("path").and_then(Json::as_str).map(PathBuf::from));
            match ctx.engine.reload(path.as_deref()) {
                Ok(()) => respond(&mut stream, 200, "{\"status\":\"ok\"}"),
                Err(e) => respond(
                    &mut stream,
                    409,
                    &format!(
                        "{{\"status\":\"REJECTED\",\"error\":{},\"serving\":\"last-good\"}}",
                        json_str(&e.to_string())
                    ),
                ),
            }
        }
        ("GET", "/status") => respond(&mut stream, 200, &status_json(&ctx.engine.status())),
        ("GET", "/") => respond(
            &mut stream,
            200,
            "{\"endpoints\":[\"POST /predict\",\"POST /reload\",\"GET /status\"]}",
        ),
        ("GET", _) | ("POST", _) => respond(&mut stream, 404, "{\"error\":\"not found\"}"),
        _ => respond(&mut stream, 405, "{\"error\":\"method not allowed\"}"),
    }
}

/// Parses + validates a predict body against the live model geometry.
fn parse_predict(body: &str, status: &EngineStatus) -> Result<ServeRequest, String> {
    let j = json::parse(body).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Some(Json::Arr(win)) = j.get("window") else {
        return Err("missing \"window\" array".into());
    };
    let expected = status.t_in * status.n;
    if win.len() != expected {
        return Err(format!(
            "window has {} values, model wants t_in*n = {}*{} = {expected}",
            win.len(),
            status.t_in,
            status.n
        ));
    }
    let mut window = Vec::with_capacity(expected);
    for v in win {
        match v.as_f64() {
            Some(x) if x.is_finite() => window.push(x as f32),
            _ => return Err("window values must be finite numbers".into()),
        }
    }
    let tod = j.get("tod").and_then(Json::as_f64).unwrap_or(0.0);
    if !(0.0..1.0).contains(&tod) {
        return Err("tod must be in [0, 1)".into());
    }
    let deadline_ns = match j.get("deadline_ms").and_then(Json::as_f64) {
        Some(ms) if ms >= 0.0 => elapsed_ns().saturating_add((ms * 1e6) as u64),
        Some(_) => return Err("deadline_ms must be >= 0".into()),
        None => u64::MAX,
    };
    Ok(ServeRequest { window, tod: tod as f32, deadline_ns })
}

fn render_response(resp: &ServeResponse) -> (u16, String) {
    match resp {
        ServeResponse::Ok(pred) => (200, pred_json("OK", pred)),
        ServeResponse::Degraded(pred) => (200, pred_json("DEGRADED", pred)),
        ServeResponse::Shed => (503, "{\"status\":\"SHED\"}".into()),
        ServeResponse::Timeout => (504, "{\"status\":\"TIMEOUT\"}".into()),
        ServeResponse::Error(msg) => {
            (500, format!("{{\"status\":\"ERROR\",\"error\":{}}}", json_str(msg)))
        }
    }
}

fn pred_json(status: &str, pred: &[f32]) -> String {
    let mut out = String::with_capacity(24 + pred.len() * 8);
    out.push_str("{\"status\":\"");
    out.push_str(status);
    out.push_str("\",\"prediction\":[");
    for (i, v) in pred.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else {
            out.push_str("null");
        }
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders [`EngineStatus`] as the `/status` document.
pub fn status_json(s: &EngineStatus) -> String {
    format!(
        "{{\"state\":\"{}\",\"model\":{},\"params\":{},\"n\":{},\"t_in\":{},\"t_out\":{},\
         \"queue_depth\":{},\"high_water\":{},\"breaker_trips\":{},\"reloads\":{},\
         \"reload_failures\":{}}}",
        s.state,
        json_str(&s.model),
        s.params,
        s.n,
        s.t_in,
        s.t_out,
        s.queue_depth,
        s.high_water,
        s.breaker_trips,
        s.reloads,
        s.reload_failures
    )
}
