//! Regression losses with missing-value masking.
//!
//! PeMS-style data marks missing samples with zeros; following DCRNN and
//! Graph-WaveNet, losses mask out entries whose *target* is (near) zero so
//! models are not trained to predict sensor dropouts.

use traffic_tensor::{Tape, Tensor, Var};

/// Builds the standard null-value mask: 1 where `|target| > eps`, else 0,
/// normalised to mean 1 over the valid entries (PyTorch DCRNN convention).
pub fn null_mask(target: &Tensor, eps: f32) -> Tensor {
    let raw = target.map(|v| if v.abs() > eps { 1.0 } else { 0.0 });
    let mean = raw.mean_all();
    if mean <= 0.0 {
        return raw; // everything missing: zero mask (loss becomes 0)
    }
    raw.mul_scalar(1.0 / mean)
}

/// Masked mean absolute error between prediction and a constant target.
pub fn masked_mae<'t>(_tape: &'t Tape, pred: Var<'t>, target: &Tensor, mask: &Tensor) -> Var<'t> {
    let diff = pred.add_const(&target.neg());
    diff.abs().mul_const(mask).mean_all()
}

/// Masked mean squared error.
pub fn masked_mse<'t>(_tape: &'t Tape, pred: Var<'t>, target: &Tensor, mask: &Tensor) -> Var<'t> {
    let diff = pred.add_const(&target.neg());
    diff.powf(2.0).mul_const(mask).mean_all()
}

/// Masked Huber (smooth-L1) loss with threshold `delta`.
///
/// Quadratic near zero, linear in the tails; `delta` controls the switch.
/// Implemented as a smooth blend that is exactly differentiable everywhere.
pub fn masked_huber<'t>(
    tape: &'t Tape,
    pred: Var<'t>,
    target: &Tensor,
    mask: &Tensor,
    delta: f32,
) -> Var<'t> {
    let diff = pred.add_const(&target.neg());
    let a = diff.abs();
    // huber(x) = 0.5 x²           if |x| <= δ
    //          = δ|x| - 0.5 δ²    otherwise
    // Build via constant masks on |x| (values known at forward time).
    let av = a.value();
    let quad_mask = av.map(|v| if v <= delta { 1.0 } else { 0.0 });
    let lin_mask = av.map(|v| if v <= delta { 0.0 } else { 1.0 });
    let quad = diff.powf(2.0).mul_scalar(0.5).mul_const(&quad_mask);
    let lin = a.mul_scalar(delta).add_scalar(-0.5 * delta * delta).mul_const(&lin_mask);
    let _ = tape;
    quad.add(&lin).mul_const(mask).mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ignores_zeros() {
        let t = Tensor::from_vec(vec![1.0, 0.0, 3.0, 0.0], &[4]);
        let m = null_mask(&t, 1e-3);
        // two valid of four → raw mean 0.5 → valid entries weighted 2
        assert_eq!(m.as_slice(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn mask_all_missing_is_zero() {
        let t = Tensor::zeros(&[3]);
        let m = null_mask(&t, 1e-3);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn mae_matches_hand_computed() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![2.0, 5.0], &[2]), true);
        let target = Tensor::from_vec(vec![1.0, 7.0], &[2]);
        let mask = Tensor::ones(&[2]);
        let loss = masked_mae(&tape, pred, &target, &mask);
        assert!((loss.value().item() - 1.5).abs() < 1e-6); // (1 + 2) / 2
    }

    #[test]
    fn mae_masking_removes_missing_targets() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![2.0, 100.0], &[2]), true);
        let target = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let mask = null_mask(&target, 1e-3);
        let loss = masked_mae(&tape, pred, &target, &mask);
        // only the first entry counts, weighted 2, averaged over 2 elements → |2-1| = 1
        assert!((loss.value().item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mse_gradient_is_linear_in_error() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![3.0], &[1]), true);
        let target = Tensor::from_vec(vec![1.0], &[1]);
        let mask = Tensor::ones(&[1]);
        let loss = masked_mse(&tape, pred, &target, &mask);
        let grads = tape.backward(loss);
        // d/dp (p - t)² = 2(p - t) = 4
        assert!((grads.get(pred).unwrap().as_slice()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn huber_interpolates() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![0.5, 3.0], &[2]), true);
        let target = Tensor::zeros(&[2]);
        let mask = Tensor::ones(&[2]);
        let loss = masked_huber(&tape, pred, &target, &mask, 1.0);
        // [0.5·0.25, 1·3 − 0.5] = [0.125, 2.5]; mean = 1.3125
        assert!((loss.value().item() - 1.3125).abs() < 1e-5);
    }
}
