//! Run-to-run determinism of training:
//! - thread counts: the compute pool splits only output ranges (never
//!   the reduction axis), so `TRAFFIC_THREADS=1` vs `TRAFFIC_THREADS=8`
//!   must produce bit-identical losses (exercised via the equivalent
//!   [`pool::set_thread_cap`] override, which both runs in one process);
//! - buffer recycling: the traffic-mem pool only changes where output
//!   buffers come from, never what is written, so `TRAFFIC_MEM_CAP=0`
//!   (pool off) vs the default (pool on) must also be bit-identical
//!   (exercised via [`mem::set_mem_cap`]);
//! - SIMD dispatch: lane-wise AVX2 kernels are bit-identical
//!   transliterations of their scalar fallbacks, so `TRAFFIC_SIMD=0`
//!   vs default must be bit-identical (exercised via
//!   [`simd::set_force_scalar`]). Horizontal reductions are the one
//!   documented exception: `TRAFFIC_SIMD_REDUCE=1` changes summation
//!   association order (different low-order bits allowed), but each
//!   mode must still be run-to-run deterministic — both are pinned
//!   here.

use traffic_suite::core::{train, TrainConfig};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::tensor::{mem, pool, simd};

/// Both tests flip process-global knobs (thread cap, mem cap); they
/// serialise on one lock so neither observes the other mid-flip.
fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn stgcn_losses(thread_cap: usize) -> Vec<u32> {
    pool::set_thread_cap(thread_cap);
    pool::warmup();
    let mut cfg = SimConfig::new("determinism", Task::Speed, 8, 5);
    cfg.missing_rate = 0.0;
    let ds = simulate(&cfg);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let model = build_model("STGCN", &ctx, &mut rng);
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        max_batches_per_epoch: Some(8),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &train_cfg);
    // Compare exact bit patterns, not approximate values.
    report.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn stgcn_losses_identical_across_thread_counts() {
    let _guard = knob_lock();
    let serial = stgcn_losses(1);
    let pooled = stgcn_losses(8);
    pool::set_thread_cap(usize::MAX);
    assert_eq!(serial, pooled, "2-epoch STGCN losses must be bit-identical with 1 vs 8 threads");
}

#[test]
fn stgcn_losses_identical_with_simd_on_and_off() {
    let _guard = knob_lock();
    // TRAFFIC_SIMD=0 equivalent: every elementwise kernel runs the
    // scalar fallback.
    simd::set_force_scalar(true);
    let scalar = stgcn_losses(usize::MAX);
    // Default: AVX2 lane-wise kernels where the CPU supports them.
    simd::set_force_scalar(false);
    let vectorized = stgcn_losses(usize::MAX);
    assert_eq!(
        scalar, vectorized,
        "2-epoch STGCN losses must be bit-identical with SIMD on vs off (lane-wise path)"
    );
}

#[test]
fn stgcn_losses_deterministic_in_both_reduce_modes() {
    let _guard = knob_lock();
    // Default mode: sequential scalar reductions. Two runs must agree
    // bit-for-bit.
    simd::set_reduce_simd(false);
    let seq_a = stgcn_losses(usize::MAX);
    let seq_b = stgcn_losses(usize::MAX);
    assert_eq!(seq_a, seq_b, "sequential-reduction training must be run-to-run deterministic");
    // Opt-in TRAFFIC_SIMD_REDUCE=1: the 8-accumulator fold may differ
    // from sequential in low-order bits (association order), but must
    // itself be run-to-run deterministic at any thread count — slots
    // are reduced whole, so chunk boundaries never split a sum.
    simd::set_reduce_simd(true);
    let simd_a = stgcn_losses(1);
    let simd_b = stgcn_losses(8);
    simd::set_reduce_simd(false);
    assert_eq!(
        simd_a, simd_b,
        "SIMD-reduction training must be deterministic across runs and thread counts"
    );
}

#[test]
fn stgcn_losses_identical_with_mem_pool_on_and_off() {
    let _guard = knob_lock();
    // TRAFFIC_MEM_CAP=0 equivalent: recycling disabled, every buffer
    // comes fresh from the allocator.
    mem::set_mem_cap(0);
    mem::trim();
    let unpooled = stgcn_losses(usize::MAX);
    // Default-cap equivalent: buffers recycle through the size classes.
    mem::set_mem_cap(256 << 20);
    let recycled = stgcn_losses(usize::MAX);
    mem::set_mem_cap(usize::MAX);
    assert_eq!(
        unpooled, recycled,
        "2-epoch STGCN losses must be bit-identical with the buffer pool on vs off"
    );
}
