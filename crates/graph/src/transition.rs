//! Random-walk transition matrices for diffusion convolutions (DCRNN,
//! Graph-WaveNet): forward `D_O⁻¹ W` and backward `D_I⁻¹ Wᵀ`.

use traffic_tensor::Tensor;

use crate::adjacency::row_normalize;

/// Forward random-walk transition `P_f = D_O⁻¹ W`.
pub fn forward_transition(adj: &Tensor) -> Tensor {
    row_normalize(adj)
}

/// Backward random-walk transition `P_b = D_I⁻¹ Wᵀ`.
pub fn backward_transition(adj: &Tensor) -> Tensor {
    row_normalize(&adj.t())
}

/// The `(forward, backward)` pair used as diffusion supports.
pub fn diffusion_supports(adj: &Tensor) -> Vec<Tensor> {
    vec![forward_transition(adj), backward_transition(adj)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asym() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 0.0, 0.0, 1.0, 1.0, 4.0, 0.0, 1.0], &[3, 3])
    }

    #[test]
    fn forward_rows_stochastic() {
        let p = forward_transition(&asym());
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| p.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_is_forward_of_transpose() {
        let a = asym();
        assert_eq!(backward_transition(&a), forward_transition(&a.t()));
    }

    #[test]
    fn supports_pair() {
        let s = diffusion_supports(&asym());
        assert_eq!(s.len(), 2);
        assert_ne!(s[0], s[1]); // direction matters for asymmetric graphs
    }
}
