//! Event sinks and the global dispatch table.
//!
//! Sinks receive every emitted [`Event`]. The dispatch fast path is a
//! single relaxed atomic load, so with no sink installed the
//! instrumented pipeline runs at baseline speed.

use std::collections::HashMap;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::event::{Event, Value};

/// Receives emitted events. Implementations must be cheap and
/// non-panicking: they run inline on the training thread.
pub trait Sink: Send + Sync {
    /// Called for every emitted event.
    fn on_event(&self, event: &Event);

    /// Flushes buffered output.
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());

/// True when at least one sink is listening: a global one, or a
/// cell-scoped sink on the current thread.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || crate::scope::has_scoped_sink()
}

/// Installs a sink; events flow to it until [`remove_sink`] /
/// [`clear_sinks`].
pub fn add_sink(sink: Arc<dyn Sink>) {
    let mut sinks = SINKS.write().expect("sink table poisoned");
    sinks.push(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes a specific sink (by identity).
pub fn remove_sink(sink: &Arc<dyn Sink>) {
    let mut sinks = SINKS.write().expect("sink table poisoned");
    sinks.retain(|s| !Arc::ptr_eq(s, sink));
    ENABLED.store(!sinks.is_empty(), Ordering::Relaxed);
}

/// Removes every sink.
pub fn clear_sinks() {
    let mut sinks = SINKS.write().expect("sink table poisoned");
    sinks.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

pub(crate) fn dispatch(event: &Event) {
    let scoped = crate::scope::scoped_sink();
    let global = ENABLED.load(Ordering::Relaxed);
    if !global && scoped.is_none() {
        return;
    }
    // Inside a cell scope, tag the event so shared sinks can tell
    // concurrent cells apart (explicit `cell` fields win).
    let tagged;
    let event = match crate::scope::current_cell() {
        Some(cell) if event.get("cell").is_none() => {
            tagged = event.clone().with("cell", cell.as_ref());
            &tagged
        }
        _ => event,
    };
    if let Some(s) = scoped {
        s.on_event(event);
    }
    if global {
        let sinks = SINKS.read().expect("sink table poisoned");
        for s in sinks.iter() {
            s.on_event(event);
        }
    }
}

pub(crate) fn flush_all() {
    let sinks = SINKS.read().expect("sink table poisoned");
    for s in sinks.iter() {
        s.flush();
    }
}

// ---------------------------------------------------------------------
// Console sink
// ---------------------------------------------------------------------

/// Human-oriented sink: prints one line per epoch with a live loss
/// sparkline, plus run banners. Span and metric events are skipped
/// (they belong in the JSONL manifest).
///
/// When the experiment scheduler announces concurrent cells
/// (`cell_start`/`cell_end` events), epoch lines from those cells
/// switch to one compact `[sched]` progress line per in-flight cell —
/// interleaved sparklines from parallel cells would be unreadable.
/// Serial runs (no `cell_start` seen) keep the legacy sparkline output.
#[derive(Default)]
pub struct ConsoleSink {
    loss_curves: Mutex<HashMap<String, Vec<f32>>>,
    /// Cells announced by the scheduler and not yet finished.
    in_flight: Mutex<Vec<String>>,
}

impl ConsoleSink {
    /// New console sink.
    pub fn new() -> Self {
        Self::default()
    }
}

fn field_f64(e: &Event, key: &str) -> Option<f64> {
    match e.get(key) {
        Some(Value::F64(x)) => Some(*x),
        Some(Value::I64(x)) => Some(*x as f64),
        Some(Value::U64(x)) => Some(*x as f64),
        _ => None,
    }
}

fn field_str<'e>(e: &'e Event, key: &str) -> Option<&'e str> {
    match e.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

impl Sink for ConsoleSink {
    fn on_event(&self, event: &Event) {
        match event.kind.as_str() {
            "run_start" => {
                let name = field_str(event, "run").unwrap_or("?");
                println!("[obs] run '{name}' started");
            }
            "run_end" => {
                let name = field_str(event, "run").unwrap_or("?");
                let wall = field_f64(event, "wall_s").unwrap_or(f64::NAN);
                println!("[obs] run '{name}' finished in {wall:.2}s");
            }
            "cell_start" => {
                if let Some(cell) = field_str(event, "cell") {
                    let mut cells = self.in_flight.lock().expect("console sink poisoned");
                    cells.push(cell.to_string());
                    println!("[sched] > {cell} started ({} in flight)", cells.len());
                }
            }
            "cell_end" => {
                if let Some(cell) = field_str(event, "cell") {
                    let mut cells = self.in_flight.lock().expect("console sink poisoned");
                    cells.retain(|c| c != cell);
                    let secs = field_f64(event, "secs").unwrap_or(f64::NAN);
                    let ok = matches!(event.get("ok"), Some(Value::Bool(true)));
                    let mark = if ok { "ok" } else { "FAILED" };
                    println!("[sched] < {cell} {mark} in {secs:.1}s ({} in flight)", cells.len());
                }
            }
            "alert" => {
                let rule = field_str(event, "rule").unwrap_or("?");
                match field_str(event, "state") {
                    Some("resolved") => println!("[watch] resolved: {rule}"),
                    _ => {
                        let msg = field_str(event, "message").unwrap_or("");
                        eprintln!("[watch] ALERT {rule}: {msg}");
                    }
                }
            }
            "epoch" => {
                let model = field_str(event, "model").unwrap_or("?").to_string();
                let epoch = field_f64(event, "epoch").unwrap_or(-1.0) as i64;
                let loss = field_f64(event, "loss").unwrap_or(f64::NAN);
                // Scheduler-tracked cell: one compact progress line per
                // in-flight cell instead of an interleaved sparkline.
                if let Some(cell) = field_str(event, "cell") {
                    let cells = self.in_flight.lock().expect("console sink poisoned");
                    if cells.iter().any(|c| c == cell) {
                        println!(
                            "[sched] {cell} epoch {epoch} loss {loss:.4} ({} in flight)",
                            cells.len()
                        );
                        return;
                    }
                }
                let spark = {
                    let mut curves = self.loss_curves.lock().expect("console sink poisoned");
                    let curve = curves.entry(model.clone()).or_default();
                    curve.push(loss as f32);
                    crate::sparkline(curve)
                };
                let mut line = format!("[obs] {model} epoch {epoch} loss {loss:.4}");
                if let Some(vl) = field_f64(event, "val_loss") {
                    line.push_str(&format!(" val {vl:.4}"));
                }
                if let Some(t) = field_f64(event, "epoch_s") {
                    line.push_str(&format!(" ({t:.2}s"));
                    if let Some(sps) = field_f64(event, "samples_per_sec") {
                        line.push_str(&format!(", {sps:.0} samples/s"));
                    }
                    line.push(')');
                }
                println!("{line}  {spark}");
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

/// Machine-oriented sink: every event as one JSON line in a per-run
/// manifest (`<dir>/<run>.jsonl`), suitable for `scripts/plot_results.py`
/// and BENCH-style trajectories.
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) `<dir>/<run>.jsonl`.
    pub fn create(dir: impl AsRef<Path>, run: &str) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{run}.jsonl"));
        let file = fs::File::create(&path)?;
        Ok(JsonlSink { path, writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Where this sink writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn on_event(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // I/O errors are swallowed on purpose: telemetry must never
        // take down a training run.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("traffic_obs_sink_test");
        let sink = JsonlSink::create(&dir, "unit").unwrap();
        sink.on_event(&Event::new("a").with("x", 1u64));
        sink.on_event(&Event::new("b").with("y", "z"));
        sink.flush();
        let content = fs::read_to_string(sink.path()).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).unwrap();
        }
        fs::remove_dir_all(&dir).ok();
    }
}
